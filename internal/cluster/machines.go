// Package cluster models the four GPU supercomputers of the paper
// (Frontier, Alps, Leonardo, Summit) and predicts the performance of the
// distributed mixed-precision tile Cholesky on them.
//
// This environment has two CPU cores, so the machines themselves are the
// one substrate that must be simulated (DESIGN.md section 4). Two layers
// are provided and cross-validated against each other:
//
//   - Predict: an analytic pipelined-panel model at paper scale
//     (matrix dimensions in the millions, tile grids in the thousands),
//     combining a precision-weighted compute roofline, a block-cyclic
//     broadcast communication volume with collective-policy effects, a
//     panel dependency chain, and precision-conversion overheads.
//   - SimulateDES: a discrete-event list-scheduling simulation of the
//     actual task graph with tile ownership, usable for small tile
//     grids; tests check the analytic model against it.
//
// The GPU rate and network constants are calibrated so the headline
// paper numbers are reproduced within tolerance (see EXPERIMENTS.md);
// the *shapes* (variant speedups, scaling efficiencies, machine
// orderings, memory-limited problem sizes) are genuine model outputs.
package cluster

import (
	"exaclim/internal/tile"
)

// GPUSpec describes one accelerator.
type GPUSpec struct {
	Name string
	// PeakTF is the vendor peak in TFlop/s per precision (tensor/matrix
	// engines for SP/HP where they exist).
	PeakTF map[tile.Precision]float64
	// Eff is the sustained fraction of peak achieved by large GEMM tiles
	// in the application (empirical, calibrated).
	Eff map[tile.Precision]float64
	// MemGB is usable device memory.
	MemGB float64
	// ConvertGBs is the achievable precision-conversion throughput in
	// gigabytes of source data per second (memory-bandwidth bound).
	ConvertGBs float64
}

// MachineSpec describes a system.
type MachineSpec struct {
	Name        string
	TotalNodes  int
	GPUsPerNode int
	GPU         GPUSpec
	// InjectionGBs is the per-node network injection bandwidth.
	InjectionGBs float64
	// LatencyUS is the one-way small-message latency in microseconds.
	LatencyUS float64
	// NetEff is the achievable fraction of injection bandwidth under
	// the application's traffic pattern.
	NetEff float64
	// StepOvhMS and OvhExp set the per-panel-step runtime serialization
	// overhead: StepOvhMS * nodes^OvhExp milliseconds per step. This
	// captures dynamic collective-group construction and scheduler costs
	// that grow with the machine (largest on Frontier, whose MCM GPUs
	// share runtime resources); calibrated against the paper's scale
	// curves.
	StepOvhMS float64
	OvhExp    float64
	// FanScale scales the broadcast fan-out (2*sqrt(GPUs) receivers per
	// panel tile) to account for process-grid layout and tree overlap.
	FanScale float64
}

// PeakPFDP returns the theoretical double-precision peak of `nodes`
// nodes in PFlop/s, the denominator of the paper's percent-of-peak.
func (m MachineSpec) PeakPFDP(nodes int) float64 {
	return float64(nodes) * float64(m.GPUsPerNode) * m.GPU.PeakTF[tile.FP64] / 1000
}

// GPUs returns the GPU count of `nodes` nodes.
func (m MachineSpec) GPUs(nodes int) int { return nodes * m.GPUsPerNode }

// The four systems of the paper (Section IV-D), with per-precision peaks
// from vendor datasheets and sustained efficiencies calibrated against
// the paper's measured Flop/s (Table I, Figs. 6 and 8).
//
// Per the paper, an AMD MI250X multi-chip module is counted as one GPU
// (two GCDs), and a GH200 superchip contributes one H100.

// Summit returns ORNL Summit: 4,608 nodes, 6 NVIDIA V100 per node.
func Summit() MachineSpec {
	return MachineSpec{
		Name:        "Summit",
		TotalNodes:  4608,
		GPUsPerNode: 6,
		GPU: GPUSpec{
			Name: "V100",
			PeakTF: map[tile.Precision]float64{
				tile.FP64: 7.8, tile.FP32: 15.7, tile.FP16: 125,
			},
			Eff: map[tile.Precision]float64{
				tile.FP64: 0.723, tile.FP32: 0.696, tile.FP16: 0.278,
			},
			MemGB:      16,
			ConvertGBs: 650,
		},
		InjectionGBs: 23,
		LatencyUS:    3,
		NetEff:       1.0,
		StepOvhMS:    2.5,
		OvhExp:       0.353,
		FanScale:     0.8,
	}
}

// Frontier returns ORNL Frontier: 9,472 nodes, 4 AMD MI250X per node.
func Frontier() MachineSpec {
	return MachineSpec{
		Name:        "Frontier",
		TotalNodes:  9472,
		GPUsPerNode: 4,
		GPU: GPUSpec{
			Name: "MI250X",
			PeakTF: map[tile.Precision]float64{
				tile.FP64: 47.9, tile.FP32: 47.9, tile.FP16: 383,
			},
			Eff: map[tile.Precision]float64{
				tile.FP64: 0.85, tile.FP32: 0.485, tile.FP16: 0.322,
			},
			MemGB:      128,
			ConvertGBs: 900,
		},
		InjectionGBs: 100,
		LatencyUS:    2,
		NetEff:       1.0,
		StepOvhMS:    1.936,
		OvhExp:       0.580,
		FanScale:     0.8,
	}
}

// Alps returns CSCS Alps (Grace-Hopper partition): 2,688 nodes, 4 GH200.
func Alps() MachineSpec {
	return MachineSpec{
		Name:        "Alps",
		TotalNodes:  2688,
		GPUsPerNode: 4,
		GPU: GPUSpec{
			Name: "GH200",
			PeakTF: map[tile.Precision]float64{
				tile.FP64: 34, tile.FP32: 67, tile.FP16: 990,
			},
			Eff: map[tile.Precision]float64{
				tile.FP64: 0.739, tile.FP32: 0.70, tile.FP16: 0.172,
			},
			MemGB:      96,
			ConvertGBs: 1500,
		},
		InjectionGBs: 100,
		LatencyUS:    2,
		NetEff:       0.472,
		StepOvhMS:    0.327,
		OvhExp:       0.591,
		FanScale:     2.532,
	}
}

// Leonardo returns CINECA Leonardo: 3,456 nodes, 4 NVIDIA A100 64GB.
func Leonardo() MachineSpec {
	return MachineSpec{
		Name:        "Leonardo",
		TotalNodes:  3456,
		GPUsPerNode: 4,
		GPU: GPUSpec{
			Name: "A100",
			PeakTF: map[tile.Precision]float64{
				tile.FP64: 19.5, tile.FP32: 19.5, tile.FP16: 312,
			},
			Eff: map[tile.Precision]float64{
				tile.FP64: 0.846, tile.FP32: 0.666, tile.FP16: 0.381,
			},
			MemGB:      64,
			ConvertGBs: 700,
		},
		InjectionGBs: 50,
		LatencyUS:    2,
		NetEff:       0.620,
		StepOvhMS:    1.044,
		OvhExp:       0.423,
		FanScale:     2.244,
	}
}

// Machines lists the four systems in the paper's Table I order.
func Machines() []MachineSpec {
	return []MachineSpec{Frontier(), Alps(), Leonardo(), Summit()}
}
