package archive

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"exaclim/internal/tile"
)

// openTestArchive writes a deterministic campaign and opens a reader
// over it, returning both the reader and the original packed vectors.
func openTestArchive(t *testing.T, L int, bands []Band) (*Reader, Header, [][][][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	h := testHeader(L, bands)
	data := campaignData(rng, h, 10, 1.2)
	enc := writeArchive(t, h, data)
	r, err := NewReader(bytes.NewReader(enc), int64(len(enc)))
	if err != nil {
		t.Fatal(err)
	}
	return r, r.Header(), data
}

// TestSeriesCursorMatchesReader pins the Series cursor against the
// reader's shared-cache random access, across chunk boundaries, in
// forward, backward and repeated order.
func TestSeriesCursorMatchesReader(t *testing.T) {
	r, h, _ := openTestArchive(t, 8, UniformBands(8, tile.FP64))
	for s := 0; s < h.Scenarios; s++ {
		for m := 0; m < h.Members; m++ {
			cur, err := r.Series(m, s)
			if err != nil {
				t.Fatal(err)
			}
			if cur.Member() != m || cur.Scenario() != s || cur.Steps() != h.Steps {
				t.Fatalf("cursor identity %d/%d/%d, want %d/%d/%d",
					cur.Member(), cur.Scenario(), cur.Steps(), m, s, h.Steps)
			}
			for _, tt := range []int{0, 6, 3, 3, 1, 5, 2, 4, 0} {
				got, err := cur.ReadPacked(tt, nil)
				if err != nil {
					t.Fatal(err)
				}
				want, err := r.ReadPacked(m, s, tt, nil)
				if err != nil {
					t.Fatal(err)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("member %d scenario %d step %d coeff %d: %g, want %g",
							m, s, tt, i, got[i], want[i])
					}
				}
				wf, err := r.ReadField(m, s, tt)
				if err != nil {
					t.Fatal(err)
				}
				gf := wf.Copy()
				for pix := range gf.Data {
					gf.Data[pix] = 0
				}
				if err := cur.ReadFieldInto(gf, tt); err != nil {
					t.Fatal(err)
				}
				for pix := range gf.Data {
					if gf.Data[pix] != wf.Data[pix] {
						t.Fatalf("field mismatch at member %d scenario %d step %d pixel %d", m, s, tt, pix)
					}
				}
			}
		}
	}
	if _, err := r.Series(h.Members, 0); err == nil {
		t.Error("expected error for out-of-range member")
	}
	if _, err := r.Series(0, h.Scenarios); err == nil {
		t.Error("expected error for out-of-range scenario")
	}
}

// TestReadPackedNoCacheAliasing is the regression test for the chunk
// cache handing out memory that aliases internal state: coefficients
// returned by ReadPacked (reader or cursor, allocated or caller-buffer)
// must stay intact across any sequence of later reads that recycle the
// cache, including reads of other chunks and other series.
func TestReadPackedNoCacheAliasing(t *testing.T) {
	r, h, _ := openTestArchive(t, 8, UniformBands(8, tile.FP32))
	first, err := r.ReadPacked(0, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	saved := append([]float64(nil), first...)
	cur, err := r.Series(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	firstCur, err := cur.ReadPacked(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	savedCur := append([]float64(nil), firstCur...)
	// Churn every cache layer: all chunks of all series through both the
	// shared path and the originating cursor.
	for s := 0; s < h.Scenarios; s++ {
		for m := 0; m < h.Members; m++ {
			for tt := 0; tt < h.Steps; tt++ {
				if _, err := r.ReadPacked(m, s, tt, nil); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for tt := 0; tt < h.Steps; tt++ {
		if _, err := cur.ReadPacked(tt, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := range saved {
		if first[i] != saved[i] {
			t.Fatalf("reader-decoded coefficients overwritten by later reads at index %d", i)
		}
	}
	for i := range savedCur {
		if firstCur[i] != savedCur[i] {
			t.Fatalf("cursor-decoded coefficients overwritten by later reads at index %d", i)
		}
	}
}

// TestFailedReadDoesNotPoisonCache pins the failure path of the reused
// chunk buffer: a read that fails CRC verification clobbers the buffer
// in place, so the cache entry must be invalidated — a later read of the
// previously cached chunk has to re-fetch, not decode the corrupt
// chunk's bytes under the old key.
func TestFailedReadDoesNotPoisonCache(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	h := testHeader(8, UniformBands(8, tile.FP64))
	data := campaignData(rng, h, 10, 1.2)
	enc := writeArchive(t, h, data)
	r, err := NewReader(bytes.NewReader(enc), int64(len(enc)))
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte inside chunk 1 of series (member 0,
	// scenario 0); chunk 0 stays intact.
	ref := r.index[r.h.seriesID(0, 0)][1]
	corrupt := append([]byte(nil), enc...)
	corrupt[ref.off+int64(chunkHeaderLen)+5] ^= 0xff
	r, err = NewReader(bytes.NewReader(corrupt), int64(len(corrupt)))
	if err != nil {
		t.Fatal(err)
	}
	tGood, tBad := 0, h.ChunkSteps // steps in chunk 0 and chunk 1

	check := func(read func(tt int) ([]float64, error)) {
		t.Helper()
		first, err := read(tGood)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]float64(nil), first...)
		if _, err := read(tBad); err == nil {
			t.Fatal("expected CRC error reading the corrupted chunk")
		}
		again, err := read(tGood)
		if err != nil {
			t.Fatalf("re-read of intact chunk after failed read: %v", err)
		}
		for i := range want {
			if again[i] != want[i] {
				t.Fatalf("cache poisoned by failed read: coeff %d = %g, want %g", i, again[i], want[i])
			}
		}
	}
	check(func(tt int) ([]float64, error) { return r.ReadPacked(0, 0, tt, nil) })
	cur, err := r.Series(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	check(func(tt int) ([]float64, error) { return cur.ReadPacked(tt, nil) })
}

// TestReaderConcurrentAccess hammers one Reader from many goroutines —
// shared-path reads of every series interleaved with independent Series
// cursors over the same series — and checks every decode against the
// stored truth. Run with -race this pins the sharded-cache and cursor
// concurrency contracts.
func TestReaderConcurrentAccess(t *testing.T) {
	r, h, data := openTestArchive(t, 8, UniformBands(8, tile.FP64))
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			buf := make([]float64, h.Dim())
			for iter := 0; iter < 40; iter++ {
				m := rng.Intn(h.Members)
				s := rng.Intn(h.Scenarios)
				tt := rng.Intn(h.Steps)
				var got []float64
				var err error
				if iter%2 == 0 {
					got, err = r.ReadPacked(m, s, tt, buf)
				} else {
					var cur *Series
					if cur, err = r.Series(m, s); err == nil {
						got, err = cur.ReadPacked(tt, buf)
					}
				}
				if err != nil {
					errs[g] = err
					return
				}
				for i, v := range got {
					if v != data[s][m][tt][i] {
						t.Errorf("goroutine %d: member %d scenario %d step %d coeff %d: %g, want %g",
							g, m, s, tt, i, v, data[s][m][tt][i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}
