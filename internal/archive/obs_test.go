package archive

import (
	"sync"
	"testing"

	"exaclim/internal/tile"
)

// countingSink is a minimal obs.Sink collecting deltas per metric name.
type countingSink struct {
	mu sync.Mutex
	m  map[string]int64
}

func (s *countingSink) Add(metric string, delta int64) {
	s.mu.Lock()
	s.m[metric] += delta
	s.mu.Unlock()
}

func (s *countingSink) get(metric string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[metric]
}

// TestReaderSinkCounts pins the reader's metric events for a known
// access pattern: the test header has 7 steps in chunks of 3, so one
// sequential pass over a series crosses three chunks.
func TestReaderSinkCounts(t *testing.T) {
	r, h, _ := openTestArchive(t, 8, UniformBands(8, tile.FP64))
	sink := &countingSink{m: map[string]int64{}}
	r.SetObserver(sink)

	for tt := 0; tt < h.Steps; tt++ {
		if _, err := r.ReadPacked(0, 0, tt, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Steps 0..6 with ChunkSteps=3: misses at t=0,3,6, hits elsewhere.
	if got := sink.get(MetricChunkMisses); got != 3 {
		t.Errorf("chunk misses = %d, want 3", got)
	}
	if got := sink.get(MetricChunkHits); got != 4 {
		t.Errorf("chunk hits = %d, want 4", got)
	}
	if got := sink.get(MetricStepDecodes); got != int64(h.Steps) {
		t.Errorf("step decodes = %d, want %d", got, h.Steps)
	}
	if got := sink.get(MetricReadBytes); got <= 0 {
		t.Errorf("read bytes = %d, want > 0", got)
	}

	// The Series cursor reports through the parent reader's sink and
	// shows the same pattern for the same pass.
	cursor := &countingSink{m: map[string]int64{}}
	r.SetObserver(cursor)
	s, err := r.Series(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < h.Steps; tt++ {
		if _, err := s.ReadPacked(tt, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := cursor.get(MetricChunkMisses); got != 3 {
		t.Errorf("cursor chunk misses = %d, want 3", got)
	}
	if got := cursor.get(MetricChunkHits); got != 4 {
		t.Errorf("cursor chunk hits = %d, want 4", got)
	}
	if got := cursor.get(MetricStepDecodes); got != int64(h.Steps) {
		t.Errorf("cursor step decodes = %d, want %d", got, h.Steps)
	}

	// Removing the observer stops reporting without breaking reads.
	r.SetObserver(nil)
	before := cursor.get(MetricStepDecodes)
	if _, err := r.ReadPacked(0, 0, 0, nil); err != nil {
		t.Fatal(err)
	}
	if got := cursor.get(MetricStepDecodes); got != before {
		t.Errorf("sink still reporting after SetObserver(nil): %d != %d", got, before)
	}
}
