package archive

import (
	"math"
	"testing"

	"exaclim/internal/tile"
)

// TestReadPackedF32MatchesF64 pins the float32 decode path against the
// float64 path for every band precision, element by element: FP64 bands
// narrow by one float32 rounding, FP32 and FP16 bands narrow the exact
// float64 product q*s, so each element must be within half an ulp of
// the float64 decode — a far tighter bound than the quantization error
// the band already carries.
func TestReadPackedF32MatchesF64(t *testing.T) {
	for _, bands := range [][]Band{
		UniformBands(8, tile.FP64),
		UniformBands(8, tile.FP32),
		UniformBands(8, tile.FP16),
		{{Lo: 0, Hi: 2, Prec: tile.FP64}, {Lo: 2, Hi: 5, Prec: tile.FP32}, {Lo: 5, Hi: 8, Prec: tile.FP16}},
	} {
		r, h, _ := openTestArchive(t, 8, bands)
		for _, tt := range []int{0, 6, 3, 1} {
			want, err := r.ReadPacked(0, 0, tt, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := r.ReadPackedF32(0, 0, tt, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != h.Dim() {
				t.Fatalf("f32 decode length %d, want %d", len(got), h.Dim())
			}
			for i := range got {
				if got[i] != float32(want[i]) {
					t.Fatalf("bands %v step %d coeff %d: f32=%g, float32(f64)=%g",
						bands, tt, i, got[i], float32(want[i]))
				}
			}
		}
		// Out-of-range coordinates fail like the float64 path.
		if _, err := r.ReadPackedF32(h.Members, 0, 0, nil); err == nil {
			t.Error("expected error for out-of-range member")
		}
	}
}

// TestSeriesReadPackedF32 pins the cursor's float32 path against the
// reader's, across chunk boundaries and revisits.
func TestSeriesReadPackedF32(t *testing.T) {
	r, h, _ := openTestArchive(t, 8, UniformBands(8, tile.FP32))
	cur, err := r.Series(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf []float32
	for _, tt := range []int{0, 6, 3, 3, 1, 5, 2, 4, 0} {
		buf, err = cur.ReadPackedF32(tt, buf)
		if err != nil {
			t.Fatal(err)
		}
		want, err := r.ReadPackedF32(1, 0, tt, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range buf {
			if buf[i] != want[i] {
				t.Fatalf("step %d coeff %d: cursor=%g reader=%g", tt, i, buf[i], want[i])
			}
		}
	}
	if _, err := cur.ReadPackedF32(h.Steps, nil); err == nil {
		t.Error("expected error for out-of-range step")
	}
}

// TestReadPackedF32QuantBound checks the float32 decode against the
// original (pre-archive) coefficients: the narrowing must stay inside
// the per-element quantization bound the policy already promises, plus
// the float32 representation ulp for FP64 bands.
func TestReadPackedF32QuantBound(t *testing.T) {
	bands := []Band{{Lo: 0, Hi: 4, Prec: tile.FP32}, {Lo: 4, Hi: 8, Prec: tile.FP16}}
	r, _, data := openTestArchive(t, 8, bands)
	for _, tt := range []int{0, 4, 6} {
		got, err := r.ReadPackedF32(0, 0, tt, nil)
		if err != nil {
			t.Fatal(err)
		}
		orig := data[0][0][tt]
		for _, b := range bands {
			seg := orig[b.Lo*b.Lo : b.Hi*b.Hi]
			maxAbs := 0.0
			for _, v := range seg {
				if a := math.Abs(v); a > maxAbs {
					maxAbs = a
				}
			}
			s := scaleFor(maxAbs)
			for i, v := range seg {
				bound := QuantErrBound(b.Prec, v, s)
				// One extra float32 rounding of the decoded value.
				bound += math.Abs(v) * 0x1p-24
				if d := math.Abs(float64(got[b.Lo*b.Lo+i]) - v); d > bound {
					t.Fatalf("band %v coeff %d: |f32 - orig| = %g exceeds %g", b, i, d, bound)
				}
			}
		}
	}
}
