package archive

import (
	"encoding/binary"
	"fmt"
	"math"

	"exaclim/internal/half"
	"exaclim/internal/tile"
)

// decodeStepF32 decodes one step record straight into a float32 vector
// (length L^2), the narrow twin of decodeStep. FP32 and FP16 bands
// dequantize in float64 — the band scale is a power of two that may be
// subnormal in float32, where multiplying in float32 would flush the
// result to zero — and narrow once at the end; the product q*s is exact
// in float64, so the only rounding is the final float32 conversion,
// which for FP32 bands with a normal scale reproduces the quantized
// payload bit-for-bit.
func decodeStepF32(data []byte, bands []Band, dst []float32) error {
	off := 0
	for _, b := range bands {
		if off+8 > len(data) {
			return fmt.Errorf("archive: step record truncated at band %v", b)
		}
		s := math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		off += 8
		n := b.Coeffs()
		seg := dst[b.Lo*b.Lo : b.Hi*b.Hi]
		switch b.Prec {
		case tile.FP64:
			if off+8*n > len(data) {
				return fmt.Errorf("archive: step record truncated at band %v", b)
			}
			for i := 0; i < n; i++ {
				seg[i] = float32(math.Float64frombits(binary.LittleEndian.Uint64(data[off+8*i:])))
			}
			off += 8 * n
		case tile.FP32:
			if off+4*n > len(data) {
				return fmt.Errorf("archive: step record truncated at band %v", b)
			}
			for i := 0; i < n; i++ {
				q := math.Float32frombits(binary.LittleEndian.Uint32(data[off+4*i:]))
				seg[i] = float32(float64(q) * s)
			}
			off += 4 * n
		case tile.FP16:
			if off+2*n > len(data) {
				return fmt.Errorf("archive: step record truncated at band %v", b)
			}
			for i := 0; i < n; i++ {
				seg[i] = float32(half.Float16(binary.LittleEndian.Uint16(data[off+2*i:])).Float64() * s)
			}
			off += 2 * n
		}
	}
	if off != len(data) {
		return fmt.Errorf("archive: step record has %d trailing bytes", len(data)-off)
	}
	return nil
}
