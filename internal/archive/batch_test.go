package archive

import (
	"math"
	"sync"
	"testing"

	"exaclim/internal/half"
	"exaclim/internal/sphere"
	"exaclim/internal/tile"
)

// mixedBands is the three-precision layout the batch decode must cover:
// every branch of decodeStepLUT, including the FP16 lookup table.
func mixedBands(L int) []Band {
	return []Band{{0, 2, tile.FP64}, {2, L / 2, tile.FP32}, {L / 2, L, tile.FP16}}
}

// TestFP16TableExact pins the lookup table against the arithmetic
// conversion for every one of the 65536 float16 bit patterns — the
// invariant that makes LUT decode and per-step decode byte-identical.
func TestFP16TableExact(t *testing.T) {
	tab := fp16Table()
	if len(tab) != 1<<16 {
		t.Fatalf("table has %d entries, want %d", len(tab), 1<<16)
	}
	for i := 0; i < 1<<16; i++ {
		want := half.Float16(uint16(i)).Float64()
		if math.Float64bits(tab[i]) != math.Float64bits(want) {
			t.Fatalf("bits %#04x: table %v (%x) != conversion %v (%x)",
				i, tab[i], math.Float64bits(tab[i]), want, math.Float64bits(want))
		}
	}
}

// TestReadPackedRangeMatchesReadPacked pins the batch decode against
// the single-step path bit for bit, over ranges that cover chunk
// interiors, chunk boundaries, the short final chunk, single steps and
// the empty range, on a mixed FP64/FP32/FP16 band layout.
func TestReadPackedRangeMatchesReadPacked(t *testing.T) {
	const L = 8
	r, h, _ := openTestArchive(t, L, mixedBands(L))
	want := make([][]float64, h.Steps)
	ref, err := r.Series(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < h.Steps; tt++ {
		want[tt], err = ref.ReadPacked(tt, nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Steps=7, ChunkSteps=3: [0,7) crosses all three chunks, [1,5) both
	// boundaries mid-chunk, [6,7) is the short final chunk alone.
	for _, rg := range [][2]int{{0, 7}, {1, 5}, {3, 6}, {6, 7}, {4, 5}, {2, 2}} {
		s, err := r.Series(1, 0)
		if err != nil {
			t.Fatal(err)
		}
		seen := rg[0]
		err = s.ReadPackedRange(rg[0], rg[1], func(tt int, packed []float64) error {
			if tt != seen {
				t.Fatalf("range %v: got step %d, want %d", rg, tt, seen)
			}
			seen++
			for i := range packed {
				if math.Float64bits(packed[i]) != math.Float64bits(want[tt][i]) {
					t.Fatalf("range %v step %d coeff %d: batch %x != per-step %x",
						rg, tt, i, math.Float64bits(packed[i]), math.Float64bits(want[tt][i]))
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if seen != rg[1] {
			t.Fatalf("range %v: visited up to %d", rg, seen)
		}
	}
	// A warm cursor alternating between per-step and range reads stays
	// consistent (shared chunk cache state).
	s, err := r.Series(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadPacked(4, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.ReadPackedRange(3, 6, func(tt int, packed []float64) error {
		for i := range packed {
			if packed[i] != want[tt][i] {
				t.Fatalf("warm cursor step %d coeff %d differs", tt, i)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestReadPackedRangeErrors pins the error contract: inverted and
// out-of-bounds ranges fail up front, and an fn error stops the walk.
func TestReadPackedRangeErrors(t *testing.T) {
	const L = 8
	r, h, _ := openTestArchive(t, L, mixedBands(L))
	s, err := r.Series(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ReadPackedRange(3, 2, nil); err == nil {
		t.Fatal("inverted range did not error")
	}
	if err := s.ReadPackedRange(-1, 2, nil); err == nil {
		t.Fatal("negative start did not error")
	}
	if err := s.ReadPackedRange(0, h.Steps+1, nil); err == nil {
		t.Fatal("past-the-end range did not error")
	}
	calls := 0
	errStop := errTest("stop")
	if err := s.ReadPackedRange(0, h.Steps, func(tt int, _ []float64) error {
		calls++
		if tt == 2 {
			return errStop
		}
		return nil
	}); err != errStop {
		t.Fatalf("fn error not propagated: %v", err)
	}
	if calls != 3 {
		t.Fatalf("fn called %d times after early stop, want 3", calls)
	}
}

type errTest string

func (e errTest) Error() string { return string(e) }

// TestReadPackedRangeObserves pins the amortization accounting: a full
// series walk loads each chunk once and reports one amortized decode
// per step beyond each chunk's first.
func TestReadPackedRangeObserves(t *testing.T) {
	const L = 8
	r, h, _ := openTestArchive(t, L, mixedBands(L))
	s, err := r.Series(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	sink := &countingSink{m: map[string]int64{}}
	s.SetObserver(sink)
	if err := s.ReadPackedRange(0, h.Steps, func(int, []float64) error { return nil }); err != nil {
		t.Fatal(err)
	}
	// Steps=7 in chunks of 3/3/1: three chunk loads, 7 decodes, and
	// (3-1)+(3-1)+(1-1) = 4 amortized steps.
	if got := sink.get(MetricChunkMisses); got != 3 {
		t.Errorf("chunk misses = %d, want 3", got)
	}
	if got := sink.get(MetricChunkHits); got != 0 {
		t.Errorf("chunk hits = %d, want 0", got)
	}
	if got := sink.get(MetricStepDecodes); got != 7 {
		t.Errorf("step decodes = %d, want 7", got)
	}
	if got := sink.get(MetricChunkAmortized); got != 4 {
		t.Errorf("chunk amortized = %d, want 4", got)
	}
	if got := sink.get(MetricReadBytes); got <= 0 {
		t.Errorf("read bytes = %d, want > 0", got)
	}
}

// TestSeriesEachFieldMatchesReadFieldInto pins the batched field replay
// against per-step synthesis: same plan tables, same decode values, so
// the fields must be bit-identical.
func TestSeriesEachFieldMatchesReadFieldInto(t *testing.T) {
	const L = 8
	r, h, _ := openTestArchive(t, L, mixedBands(L))
	ref, err := r.Series(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]sphere.Field, h.Steps)
	for tt := 0; tt < h.Steps; tt++ {
		want[tt] = sphere.NewField(h.Grid)
		if err := ref.ReadFieldInto(want[tt], tt); err != nil {
			t.Fatal(err)
		}
	}
	s, err := r.Series(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	if err := s.EachField(0, h.Steps, func(tt int, f sphere.Field) error {
		steps++
		for i := range f.Data {
			if math.Float64bits(f.Data[i]) != math.Float64bits(want[tt].Data[i]) {
				t.Fatalf("step %d pixel %d: batched field differs", tt, i)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if steps != h.Steps {
		t.Fatalf("visited %d steps, want %d", steps, h.Steps)
	}
}

// TestReadPackedRangeConcurrent is the -race hammer: many goroutines
// walk the same series through independent cursors — batch ranges,
// per-step cursor reads, and shared-shard Reader reads — all of which
// must agree byte for byte with no data races.
func TestReadPackedRangeConcurrent(t *testing.T) {
	const L = 8
	r, h, _ := openTestArchive(t, L, mixedBands(L))
	ref, err := r.Series(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]float64, h.Steps)
	for tt := 0; tt < h.Steps; tt++ {
		want[tt], err = ref.ReadPacked(tt, nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	const goroutines = 12
	const rounds = 20
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			check := func(tt int, packed []float64) error {
				for i := range packed {
					if math.Float64bits(packed[i]) != math.Float64bits(want[tt][i]) {
						t.Errorf("goroutine %d step %d coeff %d differs", g, tt, i)
					}
				}
				return nil
			}
			switch g % 3 {
			case 0: // batched range walks on a private cursor
				s, err := r.Series(0, 0)
				if err != nil {
					errs[g] = err
					return
				}
				for i := 0; i < rounds; i++ {
					lo := (g + i) % h.Steps
					hi := h.Steps - (i % 2)
					if lo > hi {
						lo, hi = hi, lo
					}
					if err := s.ReadPackedRange(lo, hi, check); err != nil {
						errs[g] = err
						return
					}
				}
			case 1: // per-step reads on a private cursor
				s, err := r.Series(0, 0)
				if err != nil {
					errs[g] = err
					return
				}
				var buf []float64
				for i := 0; i < rounds; i++ {
					for tt := 0; tt < h.Steps; tt++ {
						buf, err = s.ReadPacked(tt, buf)
						if err != nil {
							errs[g] = err
							return
						}
						if err := check(tt, buf); err != nil {
							return
						}
					}
				}
			default: // shared-shard reader reads
				var buf []float64
				var err error
				for i := 0; i < rounds; i++ {
					for tt := h.Steps - 1; tt >= 0; tt-- {
						buf, err = r.ReadPacked(0, 0, tt, buf)
						if err != nil {
							errs[g] = err
							return
						}
						if err := check(tt, buf); err != nil {
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}
