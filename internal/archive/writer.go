package archive

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"

	"exaclim/internal/sht"
	"exaclim/internal/sphere"
)

// Writer streams a campaign into an archive. It is safe for concurrent
// use by the EmulateEnsemble callback: different (member, scenario)
// series may be appended from different goroutines at once, while within
// one series steps must arrive in order (out-of-order steps are
// rejected, never silently misplaced). Encoding and spherical harmonic
// analysis run on the calling goroutine with pooled scratch; only the
// final chunk append takes the file lock.
type Writer struct {
	h     Header
	dim   int
	stepB int

	planOnce sync.Once
	plan     *sht.Plan
	planErr  error
	packPool sync.Pool

	series []wSeries

	mu     sync.Mutex // guards w, off, index, err, closed
	w      io.Writer
	closer io.Closer
	off    int64
	index  [][]chunkRef
	err    error
	closed bool
}

// wSeries is the per-(member, scenario) streaming state. Its mutex makes
// the writer robust to any caller threading; the ensemble engine already
// serializes steps within a series, so the lock is uncontended there.
type wSeries struct {
	mu        sync.Mutex
	next      int    // next expected step
	t0        int    // first step of the open chunk
	count     int    // steps buffered in the open chunk
	buf       []byte // open chunk: header placeholder + encoded steps
	fields    int64
	sumRelErr float64
	maxRelErr float64
}

// WriterStats reports what a writer has measured so far: actual bytes on
// disk (the numerator of the paper's storage claim) and the
// coefficient-domain quantization error tracked during encoding.
type WriterStats struct {
	// Fields is the number of steps appended.
	Fields int64
	// Bytes is the total file size so far, including header, chunk
	// framing and (after Close) the index.
	Bytes int64
	// BytesPerField is Bytes/Fields (0 before the first field).
	BytesPerField float64
	// MeanRelErr and MaxRelErr summarize the per-step relative L2
	// quantization error of the stored coefficients versus the float64
	// originals — the measured counterpart of the policy budget.
	MeanRelErr, MaxRelErr float64
}

// NewWriter writes the header for h to w and returns a Writer appending
// to it. The caller owns w; use Create for a file-backed archive that
// Close finalizes and closes.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	h = h.withDefaults()
	if err := h.validate(); err != nil {
		return nil, err
	}
	hb := encodeHeader(h)
	if _, err := w.Write(hb); err != nil {
		return nil, fmt.Errorf("archive: writing header: %w", err)
	}
	wr := &Writer{
		h:      h,
		dim:    h.Dim(),
		stepB:  h.StepBytes(),
		w:      w,
		off:    int64(len(hb)),
		series: make([]wSeries, h.Series()),
		index:  make([][]chunkRef, h.Series()),
	}
	wr.packPool.New = func() any {
		s := make([]float64, wr.dim)
		return &s
	}
	return wr, nil
}

// Create creates (or truncates) the file at path and returns a Writer
// whose Close finalizes and closes it.
func Create(path string, h Header) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w, err := NewWriter(f, h)
	if err != nil {
		f.Close()
		return nil, err
	}
	w.closer = f
	return w, nil
}

// Header returns the archive header (bands shared; treat as read-only).
func (w *Writer) Header() Header { return w.h }

// ensurePlan lazily builds the analysis plan; AddPacked-only writers
// never pay for it.
func (w *Writer) ensurePlan() (*sht.Plan, error) {
	w.planOnce.Do(func() {
		p, err := sht.NewPlan(w.h.Grid, w.h.L)
		if err != nil {
			w.planErr = err
			return
		}
		// Callers fan out over members, so each analysis runs serially.
		w.plan = p.Sequential()
	})
	return w.plan, w.planErr
}

// AddField analyzes f on the archive grid and appends its packed
// spherical harmonic coefficients as step t of (member, scenario).
// Content of f above the archive band limit is truncated — that spectral
// truncation, not quantization, is the lossy half of the compression,
// exactly as in the emulator itself.
func (w *Writer) AddField(member, scenario, t int, f sphere.Field) error {
	plan, err := w.ensurePlan()
	if err != nil {
		return err
	}
	if f.Grid != w.h.Grid {
		return fmt.Errorf("archive: field grid %v does not match archive grid %v", f.Grid, w.h.Grid)
	}
	packed := w.packPool.Get().(*[]float64)
	plan.Analyze(f).PackReal(*packed)
	err = w.AddPacked(member, scenario, t, *packed)
	w.packPool.Put(packed)
	return err
}

// AddPacked appends an already-packed coefficient vector (length L^2, in
// sht.PackReal layout) as step t of (member, scenario). Steps of one
// series must arrive in order; series are independent.
func (w *Writer) AddPacked(member, scenario, t int, packed []float64) error {
	if err := w.h.checkCoord(member, scenario, t); err != nil {
		return err
	}
	if len(packed) != w.dim {
		return fmt.Errorf("archive: packed length %d, want %d", len(packed), w.dim)
	}
	// Fast-fail once a chunk write has failed: without this, a series
	// whose flush errored would buffer every remaining step in memory
	// (its count is already past ChunkSteps, so the flush trigger below
	// never fires again) and report success until Close.
	w.mu.Lock()
	err := w.err
	w.mu.Unlock()
	if err != nil {
		return err
	}
	st := &w.series[w.h.seriesID(member, scenario)]
	st.mu.Lock()
	defer st.mu.Unlock()
	if t != st.next {
		return fmt.Errorf("archive: member %d scenario %d: step %d out of order (expected %d)",
			member, scenario, t, st.next)
	}
	if st.count == 0 {
		st.t0 = t
		if st.buf == nil {
			st.buf = make([]byte, 0, chunkHeaderLen+w.h.ChunkSteps*w.stepB+4)
		}
		st.buf = st.buf[:0]
		st.buf = binary.LittleEndian.AppendUint32(st.buf, uint32(member))
		st.buf = binary.LittleEndian.AppendUint32(st.buf, uint32(scenario))
		st.buf = binary.LittleEndian.AppendUint32(st.buf, uint32(t))
		st.buf = binary.LittleEndian.AppendUint32(st.buf, 0) // count patched at flush
	}
	var err2, norm2 float64
	st.buf, err2, norm2 = appendStep(st.buf, w.h.Bands, packed)
	if norm2 > 0 {
		rel := math.Sqrt(err2 / norm2)
		st.sumRelErr += rel
		if rel > st.maxRelErr {
			st.maxRelErr = rel
		}
	}
	st.fields++
	st.count++
	st.next++
	if st.count >= w.h.ChunkSteps || st.next == w.h.Steps {
		return w.flushChunk(member, scenario, st)
	}
	return nil
}

// flushChunk seals the open chunk (patches the count, appends the CRC)
// and appends it to the file, recording its index entry. Called with the
// series lock held.
func (w *Writer) flushChunk(member, scenario int, st *wSeries) error {
	binary.LittleEndian.PutUint32(st.buf[12:], uint32(st.count))
	st.buf = binary.LittleEndian.AppendUint32(st.buf, crc32.ChecksumIEEE(st.buf))
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return fmt.Errorf("archive: write after Close")
	}
	if _, err := w.w.Write(st.buf); err != nil {
		w.err = fmt.Errorf("archive: writing chunk: %w", err)
		return w.err
	}
	sid := w.h.seriesID(member, scenario)
	w.index[sid] = append(w.index[sid], chunkRef{off: w.off, length: uint32(len(st.buf))})
	w.off += int64(len(st.buf))
	st.count = 0
	return nil
}

// Close verifies every series is complete, writes the chunk index and
// trailer, and closes the underlying file when the writer owns it. A
// writer whose campaign did not reach Header.Steps on every series
// returns an error (the file is left without an index and will not
// open).
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return fmt.Errorf("archive: already closed")
	}
	w.closed = true
	err := w.err
	w.mu.Unlock()

	if err == nil {
		for sid := range w.series {
			st := &w.series[sid]
			st.mu.Lock()
			next := st.next
			st.mu.Unlock()
			if next != w.h.Steps {
				err = fmt.Errorf("archive: series member %d scenario %d incomplete: %d of %d steps",
					sid%w.h.Members, sid/w.h.Members, next, w.h.Steps)
				break
			}
		}
	}
	if err == nil {
		w.mu.Lock()
		ib := encodeIndex(w.index)
		indexOff := w.off
		if _, werr := w.w.Write(ib); werr != nil {
			err = fmt.Errorf("archive: writing index: %w", werr)
		} else {
			w.off += int64(len(ib))
			var tb []byte
			tb = binary.LittleEndian.AppendUint64(tb, uint64(indexOff))
			tb = append(tb, trailerMagic...)
			if _, werr := w.w.Write(tb); werr != nil {
				err = fmt.Errorf("archive: writing trailer: %w", werr)
			} else {
				w.off += int64(len(tb))
			}
		}
		w.mu.Unlock()
	}
	if w.closer != nil {
		if cerr := w.closer.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// Stats aggregates the per-series measurements.
func (w *Writer) Stats() WriterStats {
	var s WriterStats
	var sumRel float64
	for sid := range w.series {
		st := &w.series[sid]
		st.mu.Lock()
		s.Fields += st.fields
		sumRel += st.sumRelErr
		if st.maxRelErr > s.MaxRelErr {
			s.MaxRelErr = st.maxRelErr
		}
		st.mu.Unlock()
	}
	w.mu.Lock()
	s.Bytes = w.off
	w.mu.Unlock()
	if s.Fields > 0 {
		s.BytesPerField = float64(s.Bytes) / float64(s.Fields)
		s.MeanRelErr = sumRel / float64(s.Fields)
	}
	return s
}
