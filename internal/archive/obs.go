package archive

import "exaclim/internal/obs"

// Metric names the reader reports through its obs.Sink. The archive
// package stays deterministic and clock-free: it only counts events and
// leaves registration, labeling and timing to the serving layer, which
// maps these constants onto registered metrics.
const (
	// MetricStepDecodes counts coefficient records decoded (one per
	// successful ReadPacked, on either the Reader or a Series cursor).
	MetricStepDecodes = "archive_step_decodes"
	// MetricReadBytes counts raw bytes read from the underlying file by
	// chunk I/O.
	MetricReadBytes = "archive_read_bytes"
	// MetricChunkHits counts ReadPacked calls served from a cached chunk.
	MetricChunkHits = "archive_chunk_hits"
	// MetricChunkMisses counts ReadPacked calls that had to read a chunk.
	MetricChunkMisses = "archive_chunk_misses"
	// MetricChunkAmortized counts steps whose decode was amortized onto
	// an already-loaded chunk by a batched ReadPackedRange call: each
	// chunk visited contributes its step count minus one. A series query
	// that decodes 64 steps from one chunk reports 63.
	MetricChunkAmortized = "archive_chunk_amortized"
)

// sinkBox wraps the Sink so atomic.Pointer has one concrete type even
// when callers swap between different Sink implementations.
type sinkBox struct{ s obs.Sink }

// SetObserver installs (or, with nil, removes) the sink receiving the
// reader's metric events. Safe to call concurrently with reads; Series
// cursors report through their parent reader's sink. Sink calls are
// always made outside shard locks — the lockedcall invariant.
func (r *Reader) SetObserver(s obs.Sink) {
	if s == nil {
		r.sink.Store(nil)
		return
	}
	r.sink.Store(&sinkBox{s: s})
}

// observe reports one metric event to the installed sink, if any.
func (r *Reader) observe(metric string, delta int64) {
	if box := r.sink.Load(); box != nil {
		box.s.Add(metric, delta)
	}
}
