package archive

import (
	"math"

	"exaclim/internal/tile"
)

// Policy is the spectrum-aware quantization policy: given the angular
// power spectrum of the fields to store, it assigns every spherical
// harmonic degree the narrowest storage width whose rounding error fits
// a relative-L2 reconstruction budget. Because the real packing is an
// isometry (sht.PackReal), a degree holding fraction p of the total
// power contributes at most u^2*p to the squared relative field error
// when stored with unit roundoff u, so the planner can spend the budget
// where the spectrum says the energy is not.
type Policy struct {
	// MaxRelErr is the per-field relative L2 reconstruction error budget
	// (quantization only); 1e-4 when zero. Note the scale: per-band
	// power-of-two scaling makes even an all-binary16 archive accurate
	// to its unit roundoff 2^-11 ≈ 4.9e-4, so budgets at or above ~1e-3
	// plan a single HP band and the spectrum only starts steering
	// precision below that.
	MaxRelErr float64
	// Safety is the fraction of the budget the planner spends, leaving
	// headroom for per-step spectrum fluctuation around the planning
	// spectrum; 0.5 when zero.
	Safety float64
}

// DefaultPolicy is the archive's default: 0.01% relative reconstruction
// error, planned at half budget — tight enough that the energetic low
// degrees of a climate spectrum are promoted to wider words while the
// tail stays at binary16.
func DefaultPolicy() Policy { return Policy{MaxRelErr: 1e-4, Safety: 0.5} }

// roundoff returns the unit roundoff of a storage precision (the
// round-to-nearest relative error bound of its significand).
func roundoff(p tile.Precision) float64 {
	switch p {
	case tile.FP64:
		return 0 // exact relative to the float64 source data
	case tile.FP32:
		return 0x1p-24
	case tile.FP16:
		return 0x1p-11
	}
	return math.Inf(1)
}

// budget returns the defaulted planning target.
func (p Policy) budget() float64 {
	maxErr := p.MaxRelErr
	if maxErr == 0 {
		maxErr = 1e-4
	}
	safety := p.Safety
	if safety == 0 {
		safety = 0.5
	}
	return maxErr * safety
}

// PlanBands chooses per-degree precisions for the spectrum C_l (length =
// band limit L, as returned by sht.Coeffs.PowerSpectrum or
// stats.MeanPowerSpectrum) and coalesces adjacent equal choices into
// bands. The planner is greedy and deterministic: every degree starts at
// binary16; while the accumulated error bound exceeds the target, the
// degree with the largest error contribution is promoted one width. For
// the rapidly decaying spectra of climate fields this keeps the handful
// of energetic low degrees in float64/float32 and the long high-degree
// tail in binary16.
func (p Policy) PlanBands(spectrum []float64) []Band {
	L := len(spectrum)
	if L == 0 {
		return nil
	}
	// Degree power w_l = (2l+1) C_l; fraction of the total.
	w := make([]float64, L)
	total := 0.0
	for l, cl := range spectrum {
		if cl > 0 && !math.IsInf(cl, 0) && !math.IsNaN(cl) {
			w[l] = float64(2*l+1) * cl
			total += w[l]
		}
	}
	prec := make([]tile.Precision, L)
	for l := range prec {
		prec[l] = tile.FP16
	}
	if total > 0 {
		u16 := roundoff(tile.FP16)
		contrib := make([]float64, L)
		err2 := 0.0
		for l := range contrib {
			contrib[l] = u16 * u16 * w[l] / total
			err2 += contrib[l]
		}
		target := p.budget()
		target2 := target * target
		for err2 > target2 {
			worst := 0
			for l := 1; l < L; l++ {
				if contrib[l] > contrib[worst] {
					worst = l
				}
			}
			if prec[worst] == tile.FP64 {
				break // everything relevant already exact
			}
			if prec[worst] == tile.FP16 {
				prec[worst] = tile.FP32
			} else {
				prec[worst] = tile.FP64
			}
			u := roundoff(prec[worst])
			next := u * u * w[worst] / total
			err2 += next - contrib[worst]
			contrib[worst] = next
		}
	}
	return coalesce(prec)
}

// coalesce merges runs of equal per-degree precision into bands.
func coalesce(prec []tile.Precision) []Band {
	var bands []Band
	for l := 0; l < len(prec); {
		hi := l + 1
		for hi < len(prec) && prec[hi] == prec[l] {
			hi++
		}
		bands = append(bands, Band{Lo: l, Hi: hi, Prec: prec[l]})
		l = hi
	}
	return bands
}
