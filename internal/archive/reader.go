package archive

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"

	"exaclim/internal/obs"
	"exaclim/internal/sht"
	"exaclim/internal/sphere"
)

// Reader opens an archive for random access: it can seek to any
// (member, scenario, t), decode the step's coefficient vector, and
// synthesize the field on demand — the "replay" half of the storage
// claim, where archived campaigns are reconstructed instead of re-read
// from petabytes of raw grids.
//
// A Reader is safe for concurrent use. The chunk-decode cache is sharded
// per (member, scenario) series, so concurrent reads of different series
// never contend; reads within one series serialize on that series' shard
// only. For fully lock-free replay fan-out, open one Series cursor per
// goroutine: cursors own their decode buffers and synthesis scratch and
// share nothing mutable with the Reader or each other.
type Reader struct {
	h     Header
	r     io.ReaderAt
	size  int64
	index [][]chunkRef
	dim   int
	stepB int

	closer io.Closer

	planOnce sync.Once
	plan     *sht.Plan
	planErr  error

	// shards[sid] caches the most recently read chunk of series sid. The
	// shard lock protects only the cached bytes and a short record
	// memcpy: chunk I/O and coefficient decode — the heavy work — always
	// run outside it (the lockedcall invariant). Data handed out by
	// ReadPacked never aliases cache state (pinned by regression test).
	shards []readerShard

	// recPool recycles the per-call record copies ReadPacked decodes
	// from once the shard lock is released.
	recPool sync.Pool

	// sink receives metric events (see obs.go); nil until SetObserver.
	// Events are reported outside shard locks, never under them.
	sink atomic.Pointer[sinkBox]
}

// readerShard is the per-series chunk cache.
type readerShard struct {
	mu    sync.Mutex
	chunk int    // cached chunk index, -1 when empty
	t0    int    // first step of the cached chunk
	buf   []byte // raw verified chunk frame, reused across reads
}

// Open opens the archive file at path; Close releases it.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	r, err := NewReader(f, fi.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	r.closer = f
	return r, nil
}

// NewReader opens an archive stored in r (size bytes long), validating
// the header, trailer and chunk index before returning.
func NewReader(r io.ReaderAt, size int64) (*Reader, error) {
	// Header: fixed prefix first, then the full band table.
	prefix := make([]byte, headerPrefixLen)
	if size < headerPrefixLen+trailerLen {
		return nil, fmt.Errorf("archive: file of %d bytes is too short to be an archive", size)
	}
	if _, err := r.ReadAt(prefix, 0); err != nil {
		return nil, fmt.Errorf("archive: reading header: %w", err)
	}
	nbands := int(binary.LittleEndian.Uint32(prefix[48:]))
	if nbands < 0 || nbands > 1<<20 {
		return nil, fmt.Errorf("archive: implausible band count %d", nbands)
	}
	hlen := headerPrefixLen + 9*nbands + 4
	if int64(hlen) > size {
		return nil, fmt.Errorf("archive: file too short for %d-band header", nbands)
	}
	hb := make([]byte, hlen)
	if _, err := r.ReadAt(hb, 0); err != nil {
		return nil, fmt.Errorf("archive: reading header: %w", err)
	}
	h, _, err := decodeHeader(hb)
	if err != nil {
		return nil, err
	}

	// Trailer and index.
	tb := make([]byte, trailerLen)
	if _, err := r.ReadAt(tb, size-trailerLen); err != nil {
		return nil, fmt.Errorf("archive: reading trailer: %w", err)
	}
	if string(tb[8:]) != trailerMagic {
		return nil, fmt.Errorf("archive: missing trailer (file truncated or not finalized)")
	}
	indexOff := int64(binary.LittleEndian.Uint64(tb))
	if indexOff < int64(hlen) || indexOff > size-trailerLen {
		return nil, fmt.Errorf("archive: index offset %d out of bounds", indexOff)
	}
	ib := make([]byte, size-trailerLen-indexOff)
	if _, err := r.ReadAt(ib, indexOff); err != nil {
		return nil, fmt.Errorf("archive: reading index: %w", err)
	}
	index, err := decodeIndex(ib, h)
	if err != nil {
		return nil, err
	}
	stepB := h.StepBytes()
	for sid, refs := range index {
		for k, ref := range refs {
			count := h.ChunkSteps
			if k == len(refs)-1 {
				count = h.Steps - k*h.ChunkSteps
			}
			wantLen := chunkHeaderLen + count*stepB + 4
			if ref.length != uint32(wantLen) {
				return nil, fmt.Errorf("archive: series %d chunk %d has length %d, want %d",
					sid, k, ref.length, wantLen)
			}
			if ref.off < int64(hlen) || ref.off+int64(ref.length) > indexOff {
				return nil, fmt.Errorf("archive: series %d chunk %d at [%d,%d) lies outside the data section",
					sid, k, ref.off, ref.off+int64(ref.length))
			}
		}
	}
	shards := make([]readerShard, h.Series())
	for sid := range shards {
		shards[sid].chunk = -1
	}
	rd := &Reader{
		h:      h,
		r:      r,
		size:   size,
		index:  index,
		dim:    h.Dim(),
		stepB:  stepB,
		shards: shards,
	}
	rd.recPool.New = func() any {
		b := make([]byte, stepB)
		return &b
	}
	return rd, nil
}

// Header returns the archive header (bands shared; treat as read-only).
func (r *Reader) Header() Header { return r.h }

// Close releases the underlying file when the reader owns it.
func (r *Reader) Close() error {
	if r.closer != nil {
		return r.closer.Close()
	}
	return nil
}

// ensurePlan lazily builds the synthesis plan.
func (r *Reader) ensurePlan() (*sht.Plan, error) {
	r.planOnce.Do(func() {
		r.plan, r.planErr = sht.NewPlan(r.h.Grid, r.h.L)
	})
	return r.plan, r.planErr
}

// readChunk reads and CRC-verifies chunk k of series sid into buf (grown
// when too small), returning the backing buffer, its step payload view,
// and the chunk's first step. It takes no locks: callers either hold the
// series shard lock or own buf outright (Series cursors).
func (r *Reader) readChunk(sid, k int, buf []byte) (raw, payload []byte, t0 int, err error) {
	ref := r.index[sid][k]
	if cap(buf) < int(ref.length) {
		buf = make([]byte, ref.length)
	}
	buf = buf[:ref.length]
	if _, err := r.r.ReadAt(buf, ref.off); err != nil {
		return nil, nil, 0, fmt.Errorf("archive: reading chunk: %w", err)
	}
	r.observe(MetricReadBytes, int64(len(buf)))
	want := binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if got := crc32.ChecksumIEEE(buf[:len(buf)-4]); got != want {
		return nil, nil, 0, fmt.Errorf("archive: series %d chunk %d checksum mismatch (corrupt or truncated chunk)", sid, k)
	}
	member := int(binary.LittleEndian.Uint32(buf[0:]))
	scenario := int(binary.LittleEndian.Uint32(buf[4:]))
	t0 = int(binary.LittleEndian.Uint32(buf[8:]))
	count := int(binary.LittleEndian.Uint32(buf[12:]))
	if r.h.seriesID(member, scenario) != sid || t0 != k*r.h.ChunkSteps {
		return nil, nil, 0, fmt.Errorf("archive: chunk at series %d index %d identifies as member %d scenario %d t0 %d",
			sid, k, member, scenario, t0)
	}
	if chunkHeaderLen+count*r.stepB+4 != len(buf) {
		return nil, nil, 0, fmt.Errorf("archive: series %d chunk %d count %d disagrees with its length", sid, k, count)
	}
	return buf, buf[chunkHeaderLen : len(buf)-4], t0, nil
}

// fetchRecord copies the raw step record of (member, scenario, t) into
// a pooled buffer and returns it. The caller must return the buffer
// with recPool.Put when done decoding.
//
// The shard lock covers only cache bookkeeping and one record-sized
// memcpy; the chunk read and the coefficient decode run outside it,
// so a slow disk or an expensive dequantization never serializes a
// whole series (the single-flight shape the analyzers enforce).
func (r *Reader) fetchRecord(member, scenario, t int) (*[]byte, error) {
	sid := r.h.seriesID(member, scenario)
	k := t / r.h.ChunkSteps
	sh := &r.shards[sid]

	recp := r.recPool.Get().(*[]byte)
	rec := (*recp)[:r.stepB]

	sh.mu.Lock()
	if sh.chunk == k {
		off := chunkHeaderLen + (t-sh.t0)*r.stepB
		copy(rec, sh.buf[off:off+r.stepB])
		sh.mu.Unlock()
		r.observe(MetricChunkHits, 1)
	} else {
		// Miss: claim the shard's buffer (marking the cache empty so no
		// reader sees it mid-fill) and read the chunk unlocked. Racing
		// misses read independently; the last to publish wins.
		buf := sh.buf
		sh.buf, sh.chunk = nil, -1
		sh.mu.Unlock()
		r.observe(MetricChunkMisses, 1)
		raw, payload, t0, err := r.readChunk(sid, k, buf)
		if err != nil {
			r.recPool.Put(recp)
			return nil, err
		}
		copy(rec, payload[(t-t0)*r.stepB:(t-t0+1)*r.stepB])
		sh.mu.Lock()
		sh.buf, sh.t0, sh.chunk = raw, t0, k
		sh.mu.Unlock()
	}
	return recp, nil
}

// ReadPacked decodes the packed coefficient vector of step t of
// (member, scenario) into dst (allocated when too small) and returns it.
// The returned data is always caller-owned: it never aliases the chunk
// cache, so it stays valid across any later reads.
func (r *Reader) ReadPacked(member, scenario, t int, dst []float64) ([]float64, error) {
	if err := r.h.checkCoord(member, scenario, t); err != nil {
		return nil, err
	}
	if cap(dst) < r.dim {
		dst = make([]float64, r.dim)
	}
	dst = dst[:r.dim]
	recp, err := r.fetchRecord(member, scenario, t)
	if err != nil {
		return nil, err
	}
	err = decodeStep((*recp)[:r.stepB], r.h.Bands, dst)
	r.recPool.Put(recp)
	if err != nil {
		return nil, err
	}
	r.observe(MetricStepDecodes, 1)
	return dst, nil
}

// ReadPackedF32 decodes the packed coefficient vector of step t of
// (member, scenario) straight to float32, never materializing a float64
// vector. Archived payloads are at most float32 wide (FP64 bands
// excepted), so for FP32 and FP16 bands the narrowing loses nothing
// beyond what quantization already spent; the float64 grid round-trip
// the serving hot path used to pay is pure overhead this entry point
// removes. Data is caller-owned, as with ReadPacked.
func (r *Reader) ReadPackedF32(member, scenario, t int, dst []float32) ([]float32, error) {
	if err := r.h.checkCoord(member, scenario, t); err != nil {
		return nil, err
	}
	if cap(dst) < r.dim {
		dst = make([]float32, r.dim)
	}
	dst = dst[:r.dim]
	recp, err := r.fetchRecord(member, scenario, t)
	if err != nil {
		return nil, err
	}
	err = decodeStepF32((*recp)[:r.stepB], r.h.Bands, dst)
	r.recPool.Put(recp)
	if err != nil {
		return nil, err
	}
	r.observe(MetricStepDecodes, 1)
	return dst, nil
}

// ReadField reconstructs the field of step t of (member, scenario) by
// decoding its coefficients and synthesizing on the archive grid.
func (r *Reader) ReadField(member, scenario, t int) (sphere.Field, error) {
	plan, err := r.ensurePlan()
	if err != nil {
		return sphere.Field{}, err
	}
	packed, err := r.ReadPacked(member, scenario, t, nil)
	if err != nil {
		return sphere.Field{}, err
	}
	return plan.Synthesize(sht.UnpackReal(packed)), nil
}

// EachField streams the full series of (member, scenario) through fn in
// step order, reusing one decode and synthesis scratch set (copy the
// field to retain it). A non-nil error from fn stops the replay and is
// returned. Decoding runs over the chunk-granular batch path
// (Series.ReadPackedRange). The synthesis uses the reader's parallel
// plan; callers that fan out over many series should prefer
// per-goroutine Series cursors, whose transforms run sequentially so
// the fan-out happens at exactly one level.
func (r *Reader) EachField(member, scenario int, fn func(t int, f sphere.Field) error) error {
	plan, err := r.ensurePlan()
	if err != nil {
		return err
	}
	s, err := r.Series(member, scenario)
	if err != nil {
		return err
	}
	s.plan = plan
	return s.EachField(0, r.h.Steps, fn)
}

// Series opens an independent, race-free streaming cursor over the
// (member, scenario) series: it owns its chunk buffer, decode state and
// synthesis scratch, so any number of cursors — including several over
// the same series — replay concurrently without sharing a single lock.
// This is what makes replay scale with cores like generation does. A
// cursor is not itself safe for concurrent use; open one per goroutine.
func (r *Reader) Series(member, scenario int) (*Series, error) {
	if err := r.h.checkCoord(member, scenario, 0); err != nil {
		return nil, err
	}
	return &Series{
		r:        r,
		member:   member,
		scenario: scenario,
		sid:      r.h.seriesID(member, scenario),
		chunk:    -1,
	}, nil
}

// Series is a streaming cursor over one (member, scenario) series. Its
// transforms run sequentially on the calling goroutine (callers fan out
// over cursors), and everything it decodes into caller-provided
// destinations is copied out of its internal buffers.
type Series struct {
	r        *Reader
	member   int
	scenario int
	sid      int

	chunk int // cached chunk index, -1 when empty
	t0    int
	buf   []byte

	plan     *sht.Plan // lazily built; sequential unless overridden
	packed   []float64
	rangeBuf []float64 // ReadPackedRange's yielded vector (cursor-owned)
	coeffs   sht.Coeffs

	sink obs.Sink // optional per-cursor sink; see Series.SetObserver
}

// SetObserver installs (or, with nil, removes) a per-cursor sink that
// receives this cursor's metric events in addition to the parent
// reader's sink. A cursor is single-goroutine by contract, so a plain
// field suffices; the serving layer uses it to attribute chunk and
// decode counts to the one request driving the cursor (trace span
// attributes) while the reader-level sink keeps the process totals.
func (s *Series) SetObserver(sink obs.Sink) { s.sink = sink }

// observe reports one metric event to the reader's sink and, when set,
// the cursor's own. Like all sink calls, it is made outside shard locks.
func (s *Series) observe(metric string, delta int64) {
	s.r.observe(metric, delta)
	if s.sink != nil {
		s.sink.Add(metric, delta)
	}
}

// Member returns the cursor's member index.
func (s *Series) Member() int { return s.member }

// Scenario returns the cursor's scenario index.
func (s *Series) Scenario() int { return s.scenario }

// Steps returns the number of steps in the series.
func (s *Series) Steps() int { return s.r.h.Steps }

// record returns a view of the raw step record of step t inside the
// cursor's chunk buffer, loading the right chunk first. The view is
// valid until the next record call.
func (s *Series) record(t int) ([]byte, error) {
	if err := s.r.h.checkCoord(s.member, s.scenario, t); err != nil {
		return nil, err
	}
	k := t / s.r.h.ChunkSteps
	if s.chunk != k {
		// Invalidate before reading: a failed readChunk clobbers the
		// reused buffer, so the old cache key must not survive it.
		s.chunk = -1
		s.observe(MetricChunkMisses, 1)
		raw, _, t0, err := s.r.readChunk(s.sid, k, s.buf)
		if err != nil {
			return nil, err
		}
		if s.sink != nil {
			// readChunk reports its byte count to the reader sink only;
			// mirror it to the cursor sink so per-request attribution sees
			// the I/O its own chunk misses caused.
			s.sink.Add(MetricReadBytes, int64(len(raw)))
		}
		s.buf, s.t0, s.chunk = raw, t0, k
	} else {
		s.observe(MetricChunkHits, 1)
	}
	payload := s.buf[chunkHeaderLen : len(s.buf)-4]
	return payload[(t-s.t0)*s.r.stepB : (t-s.t0+1)*s.r.stepB], nil
}

// ReadPacked decodes the packed coefficient vector of step t into dst
// (allocated when too small) and returns it. Like Reader.ReadPacked, the
// returned data never aliases cursor state.
func (s *Series) ReadPacked(t int, dst []float64) ([]float64, error) {
	if cap(dst) < s.r.dim {
		dst = make([]float64, s.r.dim)
	}
	dst = dst[:s.r.dim]
	rec, err := s.record(t)
	if err != nil {
		return nil, err
	}
	if err := decodeStep(rec, s.r.h.Bands, dst); err != nil {
		return nil, err
	}
	s.observe(MetricStepDecodes, 1)
	return dst, nil
}

// ReadPackedF32 decodes step t straight to float32 (see
// Reader.ReadPackedF32). Data never aliases cursor state.
func (s *Series) ReadPackedF32(t int, dst []float32) ([]float32, error) {
	if cap(dst) < s.r.dim {
		dst = make([]float32, s.r.dim)
	}
	dst = dst[:s.r.dim]
	rec, err := s.record(t)
	if err != nil {
		return nil, err
	}
	if err := decodeStepF32(rec, s.r.h.Bands, dst); err != nil {
		return nil, err
	}
	s.observe(MetricStepDecodes, 1)
	return dst, nil
}

// ensurePlan builds the cursor's synthesis plan on first field read: the
// reader's shared tables, run sequentially on the calling goroutine.
func (s *Series) ensurePlan() (*sht.Plan, error) {
	if s.plan != nil {
		return s.plan, nil
	}
	plan, err := s.r.ensurePlan()
	if err != nil {
		return nil, err
	}
	s.plan = plan.Sequential()
	return s.plan, nil
}

// ReadFieldInto decodes step t and synthesizes it into dst, which must
// live on the archive grid. Scratch is cursor-owned, so concurrent
// cursors never contend.
func (s *Series) ReadFieldInto(dst sphere.Field, t int) error {
	plan, err := s.ensurePlan()
	if err != nil {
		return err
	}
	if dst.Grid != s.r.h.Grid {
		return fmt.Errorf("archive: destination grid %v does not match archive grid %v", dst.Grid, s.r.h.Grid)
	}
	packed, err := s.ReadPacked(t, s.packed)
	if err != nil {
		return err
	}
	s.packed = packed
	if s.coeffs.L == 0 {
		s.coeffs = sht.NewCoeffs(s.r.h.L)
	}
	plan.SynthesizeInto(dst, sht.UnpackRealInto(s.coeffs, packed))
	return nil
}

// Size returns the archive file size in bytes — the measured storage
// cost the paper's savings claim compares against raw grids.
func (r *Reader) Size() int64 { return r.size }

// RelErrBound returns the policy budget the archive was planned for, or
// NaN when the header does not record one.
func (r *Reader) RelErrBound() float64 {
	if r.h.MaxRelErr == 0 {
		return math.NaN()
	}
	return r.h.MaxRelErr
}
