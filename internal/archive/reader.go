package archive

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"

	"exaclim/internal/sht"
	"exaclim/internal/sphere"
)

// Reader opens an archive for random access: it can seek to any
// (member, scenario, t), decode the step's coefficient vector, and
// synthesize the field on demand — the "replay" half of the storage
// claim, where archived campaigns are reconstructed instead of re-read
// from petabytes of raw grids. A Reader is safe for concurrent use;
// decoded-chunk caching serializes reads, so fan out over multiple
// Readers for parallel replay of one file.
type Reader struct {
	h     Header
	r     io.ReaderAt
	size  int64
	index [][]chunkRef
	dim   int
	stepB int

	closer io.Closer

	planOnce sync.Once
	plan     *sht.Plan
	planErr  error

	mu         sync.Mutex
	cacheSID   int
	cacheChunk int
	cacheT0    int
	cacheBuf   []byte // verified payload of the cached chunk
}

// Open opens the archive file at path; Close releases it.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	r, err := NewReader(f, fi.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	r.closer = f
	return r, nil
}

// NewReader opens an archive stored in r (size bytes long), validating
// the header, trailer and chunk index before returning.
func NewReader(r io.ReaderAt, size int64) (*Reader, error) {
	// Header: fixed prefix first, then the full band table.
	prefix := make([]byte, headerPrefixLen)
	if size < headerPrefixLen+trailerLen {
		return nil, fmt.Errorf("archive: file of %d bytes is too short to be an archive", size)
	}
	if _, err := r.ReadAt(prefix, 0); err != nil {
		return nil, fmt.Errorf("archive: reading header: %w", err)
	}
	nbands := int(binary.LittleEndian.Uint32(prefix[48:]))
	if nbands < 0 || nbands > 1<<20 {
		return nil, fmt.Errorf("archive: implausible band count %d", nbands)
	}
	hlen := headerPrefixLen + 9*nbands + 4
	if int64(hlen) > size {
		return nil, fmt.Errorf("archive: file too short for %d-band header", nbands)
	}
	hb := make([]byte, hlen)
	if _, err := r.ReadAt(hb, 0); err != nil {
		return nil, fmt.Errorf("archive: reading header: %w", err)
	}
	h, _, err := decodeHeader(hb)
	if err != nil {
		return nil, err
	}

	// Trailer and index.
	tb := make([]byte, trailerLen)
	if _, err := r.ReadAt(tb, size-trailerLen); err != nil {
		return nil, fmt.Errorf("archive: reading trailer: %w", err)
	}
	if string(tb[8:]) != trailerMagic {
		return nil, fmt.Errorf("archive: missing trailer (file truncated or not finalized)")
	}
	indexOff := int64(binary.LittleEndian.Uint64(tb))
	if indexOff < int64(hlen) || indexOff > size-trailerLen {
		return nil, fmt.Errorf("archive: index offset %d out of bounds", indexOff)
	}
	ib := make([]byte, size-trailerLen-indexOff)
	if _, err := r.ReadAt(ib, indexOff); err != nil {
		return nil, fmt.Errorf("archive: reading index: %w", err)
	}
	index, err := decodeIndex(ib, h)
	if err != nil {
		return nil, err
	}
	stepB := h.StepBytes()
	for sid, refs := range index {
		for k, ref := range refs {
			count := h.ChunkSteps
			if k == len(refs)-1 {
				count = h.Steps - k*h.ChunkSteps
			}
			wantLen := chunkHeaderLen + count*stepB + 4
			if ref.length != uint32(wantLen) {
				return nil, fmt.Errorf("archive: series %d chunk %d has length %d, want %d",
					sid, k, ref.length, wantLen)
			}
			if ref.off < int64(hlen) || ref.off+int64(ref.length) > indexOff {
				return nil, fmt.Errorf("archive: series %d chunk %d at [%d,%d) lies outside the data section",
					sid, k, ref.off, ref.off+int64(ref.length))
			}
		}
	}
	return &Reader{
		h:          h,
		r:          r,
		size:       size,
		index:      index,
		dim:        h.Dim(),
		stepB:      stepB,
		cacheSID:   -1,
		cacheChunk: -1,
	}, nil
}

// Header returns the archive header (bands shared; treat as read-only).
func (r *Reader) Header() Header { return r.h }

// Close releases the underlying file when the reader owns it.
func (r *Reader) Close() error {
	if r.closer != nil {
		return r.closer.Close()
	}
	return nil
}

// ensurePlan lazily builds the synthesis plan.
func (r *Reader) ensurePlan() (*sht.Plan, error) {
	r.planOnce.Do(func() {
		r.plan, r.planErr = sht.NewPlan(r.h.Grid, r.h.L)
	})
	return r.plan, r.planErr
}

// chunkPayload returns the verified step payload of the given chunk,
// reading and CRC-checking it unless cached. Called with r.mu held.
func (r *Reader) chunkPayload(sid, k int) ([]byte, error) {
	if sid == r.cacheSID && k == r.cacheChunk {
		return r.cacheBuf, nil
	}
	ref := r.index[sid][k]
	buf := make([]byte, ref.length)
	if _, err := r.r.ReadAt(buf, ref.off); err != nil {
		return nil, fmt.Errorf("archive: reading chunk: %w", err)
	}
	want := binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if got := crc32.ChecksumIEEE(buf[:len(buf)-4]); got != want {
		return nil, fmt.Errorf("archive: series %d chunk %d checksum mismatch (corrupt or truncated chunk)", sid, k)
	}
	member := int(binary.LittleEndian.Uint32(buf[0:]))
	scenario := int(binary.LittleEndian.Uint32(buf[4:]))
	t0 := int(binary.LittleEndian.Uint32(buf[8:]))
	count := int(binary.LittleEndian.Uint32(buf[12:]))
	if r.h.seriesID(member, scenario) != sid || t0 != k*r.h.ChunkSteps {
		return nil, fmt.Errorf("archive: chunk at series %d index %d identifies as member %d scenario %d t0 %d",
			sid, k, member, scenario, t0)
	}
	if chunkHeaderLen+count*r.stepB+4 != len(buf) {
		return nil, fmt.Errorf("archive: series %d chunk %d count %d disagrees with its length", sid, k, count)
	}
	r.cacheSID, r.cacheChunk, r.cacheT0 = sid, k, t0
	r.cacheBuf = buf[chunkHeaderLen : len(buf)-4]
	return r.cacheBuf, nil
}

// ReadPacked decodes the packed coefficient vector of step t of
// (member, scenario) into dst (allocated when too small) and returns it.
func (r *Reader) ReadPacked(member, scenario, t int, dst []float64) ([]float64, error) {
	if err := r.h.checkCoord(member, scenario, t); err != nil {
		return nil, err
	}
	if cap(dst) < r.dim {
		dst = make([]float64, r.dim)
	}
	dst = dst[:r.dim]
	sid := r.h.seriesID(member, scenario)
	k := t / r.h.ChunkSteps
	r.mu.Lock()
	defer r.mu.Unlock()
	payload, err := r.chunkPayload(sid, k)
	if err != nil {
		return nil, err
	}
	rec := payload[(t-r.cacheT0)*r.stepB : (t-r.cacheT0+1)*r.stepB]
	if err := decodeStep(rec, r.h.Bands, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// ReadField reconstructs the field of step t of (member, scenario) by
// decoding its coefficients and synthesizing on the archive grid.
func (r *Reader) ReadField(member, scenario, t int) (sphere.Field, error) {
	plan, err := r.ensurePlan()
	if err != nil {
		return sphere.Field{}, err
	}
	packed, err := r.ReadPacked(member, scenario, t, nil)
	if err != nil {
		return sphere.Field{}, err
	}
	return plan.Synthesize(sht.UnpackReal(packed)), nil
}

// EachField streams the full series of (member, scenario) through fn in
// step order, reusing one decode and synthesis scratch set (copy the
// field to retain it). A non-nil error from fn stops the replay and is
// returned.
func (r *Reader) EachField(member, scenario int, fn func(t int, f sphere.Field) error) error {
	plan, err := r.ensurePlan()
	if err != nil {
		return err
	}
	packed := make([]float64, r.dim)
	coeffs := sht.NewCoeffs(r.h.L)
	field := sphere.NewField(r.h.Grid)
	for t := 0; t < r.h.Steps; t++ {
		if _, err := r.ReadPacked(member, scenario, t, packed); err != nil {
			return err
		}
		plan.SynthesizeInto(field, sht.UnpackRealInto(coeffs, packed))
		if err := fn(t, field); err != nil {
			return err
		}
	}
	return nil
}

// Size returns the archive file size in bytes — the measured storage
// cost the paper's savings claim compares against raw grids.
func (r *Reader) Size() int64 { return r.size }

// RelErrBound returns the policy budget the archive was planned for, or
// NaN when the header does not record one.
func (r *Reader) RelErrBound() float64 {
	if r.h.MaxRelErr == 0 {
		return math.NaN()
	}
	return r.h.MaxRelErr
}
