package archive

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"exaclim/internal/half"
	"exaclim/internal/sht"
	"exaclim/internal/sphere"
	"exaclim/internal/tile"
)

// Chunk-granular batch decode: series queries (/v1/point, /v1/points,
// /v1/box) and replay cursors iterate many consecutive steps that live
// in the same archive chunk. ReadPackedRange walks a step range one
// chunk at a time — coordinate checks, chunk bookkeeping and metric
// events amortize to once per chunk instead of once per step — and
// decodes through a float16 lookup table that stays hot across the
// steps of a chunk. Every decoded value is bit-identical to the
// per-step ReadPacked path (pinned by TestReadPackedRangeMatchesReadPacked).

// fp16Vals is the lazily built table of every float16 bit pattern's
// float64 value (512 KiB). Direct indexing replaces the branchy
// bit-field conversion in the batch decode's inner loop; the table is
// exact by construction — each entry IS half.Float16(i).Float64() — so
// LUT decode and conversion decode agree bit for bit. It is built only
// when a batched range decode first runs: single-step decodes keep the
// arithmetic conversion, whose cache footprint is zero, because a lone
// step cannot amortize warming half a megabyte of table.
var fp16Vals struct {
	once sync.Once
	tab  []float64
}

func fp16Table() []float64 {
	fp16Vals.once.Do(func() {
		tab := make([]float64, 1<<16)
		for i := range tab {
			tab[i] = half.Float16(uint16(i)).Float64()
		}
		fp16Vals.tab = tab
	})
	return fp16Vals.tab
}

// decodeStepLUT is decodeStep with the FP16 bands decoded through
// fp16Table. Identical output, fewer branches per value; used by the
// batch range path where the table stays cache-resident across steps.
func decodeStepLUT(data []byte, bands []Band, dst []float64, f16 []float64) error {
	off := 0
	for _, b := range bands {
		if off+8 > len(data) {
			return fmt.Errorf("archive: step record truncated at band %v", b)
		}
		s := math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		off += 8
		n := b.Coeffs()
		seg := dst[b.Lo*b.Lo : b.Hi*b.Hi]
		switch b.Prec {
		case tile.FP64:
			if off+8*n > len(data) {
				return fmt.Errorf("archive: step record truncated at band %v", b)
			}
			for i := 0; i < n; i++ {
				seg[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off+8*i:]))
			}
			off += 8 * n
		case tile.FP32:
			if off+4*n > len(data) {
				return fmt.Errorf("archive: step record truncated at band %v", b)
			}
			for i := 0; i < n; i++ {
				seg[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(data[off+4*i:]))) * s
			}
			off += 4 * n
		case tile.FP16:
			if off+2*n > len(data) {
				return fmt.Errorf("archive: step record truncated at band %v", b)
			}
			for i := 0; i < n; i++ {
				seg[i] = f16[binary.LittleEndian.Uint16(data[off+2*i:])] * s
			}
			off += 2 * n
		}
	}
	if off != len(data) {
		return fmt.Errorf("archive: step record has %d trailing bytes", len(data)-off)
	}
	return nil
}

// ReadPackedRange decodes steps [t0, t1) in ascending order, calling fn
// with each step's packed coefficient vector. Consecutive steps of one
// chunk are served from a single chunk load with per-chunk (not
// per-step) bookkeeping, so a same-chunk range is substantially cheaper
// than t1-t0 ReadPacked calls; the decoded values are bit-identical to
// ReadPacked's.
//
// Unlike ReadPacked, the vector passed to fn is cursor-owned scratch,
// valid only for the duration of the call — copy it to retain it. A
// non-nil error from fn stops the walk and is returned. An empty range
// (t0 == t1) is a no-op.
//
// Metrics: MetricStepDecodes and MetricChunkHits/Misses count as for
// per-step reads, and every step beyond a chunk's first adds to
// MetricChunkAmortized — the count of decodes that skipped per-step
// chunk lookups because a batched walk kept the chunk in hand.
func (s *Series) ReadPackedRange(t0, t1 int, fn func(t int, packed []float64) error) error {
	if t0 == t1 {
		return nil
	}
	if t1 < t0 {
		return fmt.Errorf("archive: invalid step range [%d, %d)", t0, t1)
	}
	if err := s.r.h.checkCoord(s.member, s.scenario, t0); err != nil {
		return err
	}
	if err := s.r.h.checkCoord(s.member, s.scenario, t1-1); err != nil {
		return err
	}
	if cap(s.rangeBuf) < s.r.dim {
		s.rangeBuf = make([]float64, s.r.dim)
	}
	buf := s.rangeBuf[:s.r.dim]
	f16 := fp16Table()
	cs := s.r.h.ChunkSteps
	for t := t0; t < t1; {
		k := t / cs
		if s.chunk != k {
			// Invalidate before reading, as in record: a failed readChunk
			// clobbers the reused buffer.
			s.chunk = -1
			s.observe(MetricChunkMisses, 1)
			raw, _, ct0, err := s.r.readChunk(s.sid, k, s.buf)
			if err != nil {
				return err
			}
			if s.sink != nil {
				s.sink.Add(MetricReadBytes, int64(len(raw)))
			}
			s.buf, s.t0, s.chunk = raw, ct0, k
		} else {
			s.observe(MetricChunkHits, 1)
		}
		payload := s.buf[chunkHeaderLen : len(s.buf)-4]
		end := min((k+1)*cs, t1)
		steps := int64(end - t)
		for ; t < end; t++ {
			rec := payload[(t-s.t0)*s.r.stepB : (t-s.t0+1)*s.r.stepB]
			if err := decodeStepLUT(rec, s.r.h.Bands, buf, f16); err != nil {
				return err
			}
			if err := fn(t, buf); err != nil {
				return err
			}
		}
		s.observe(MetricStepDecodes, steps)
		if steps > 1 {
			s.observe(MetricChunkAmortized, steps-1)
		}
	}
	return nil
}

// EachField streams the fields of steps [t0, t1) through fn in step
// order over the batched range decode, reusing one decode and synthesis
// scratch set (copy the field to retain it). A non-nil error from fn
// stops the replay and is returned.
func (s *Series) EachField(t0, t1 int, fn func(t int, f sphere.Field) error) error {
	plan, err := s.ensurePlan()
	if err != nil {
		return err
	}
	if s.coeffs.L == 0 {
		s.coeffs = sht.NewCoeffs(s.r.h.L)
	}
	field := sphere.NewField(s.r.h.Grid)
	return s.ReadPackedRange(t0, t1, func(t int, packed []float64) error {
		plan.SynthesizeInto(field, sht.UnpackRealInto(s.coeffs, packed))
		return fn(t, field)
	})
}
