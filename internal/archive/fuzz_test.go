package archive

import (
	"bytes"
	"math/rand"
	"testing"

	"exaclim/internal/sphere"
	"exaclim/internal/tile"
)

// fuzzArchive builds one small valid archive for the fuzz targets to
// mutate: 1 member, 1 scenario, 5 steps in 2-step chunks, mixed bands.
func fuzzArchive(tb testing.TB) (Header, []byte) {
	const L = 6
	h := Header{Grid: sphere.GridForBandLimit(L), L: L,
		Members: 1, Scenarios: 1, Steps: 5, ChunkSteps: 2,
		Bands: []Band{{0, 2, tile.FP64}, {2, 4, tile.FP32}, {4, L, tile.FP16}}}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, h)
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for t := 0; t < h.Steps; t++ {
		if err := w.AddPacked(0, 0, t, decayingPacked(rng, L, 10, 0.5)); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	return h, buf.Bytes()
}

// FuzzReadHeader feeds arbitrary bytes to NewReader: the frame parser
// (header, trailer, index, and the cross-checks between them) must
// reject anything malformed with an error — never a panic or an
// out-of-bounds access — because archives arrive over the network and
// from long-term storage.
func FuzzReadHeader(f *testing.F) {
	_, valid := fuzzArchive(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-10]) // missing trailer
	f.Add(valid[:headerPrefixLen])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 256))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		// A file that passes validation must serve reads without
		// panicking (data errors like a CRC mismatch are fine).
		h := r.Header()
		r.ReadPacked(0, 0, 0, nil)
		r.ReadPacked(h.Members-1, h.Scenarios-1, h.Steps-1, nil)
	})
}

// FuzzDecodeChunk splices arbitrary bytes into a valid archive and
// replays every step: chunk decode must surface corruption as an error
// (usually the CRC) and never panic, whatever the damage — including
// damage to the index that redirects reads to the wrong frames.
func FuzzDecodeChunk(f *testing.F) {
	h, valid := fuzzArchive(f)
	f.Add(0, []byte{0x00})
	f.Add(len(valid)/2, []byte{0xff, 0xff, 0xff, 0xff})
	f.Add(len(valid)-5, []byte{0x01})
	f.Fuzz(func(t *testing.T, pos int, patch []byte) {
		if len(patch) == 0 || len(patch) > len(valid) {
			return
		}
		pos %= len(valid) - len(patch) + 1
		if pos < 0 {
			pos += len(valid) - len(patch) + 1
		}
		data := append([]byte(nil), valid...)
		copy(data[pos:], patch)

		r, err := NewReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		for tt := 0; tt < h.Steps; tt++ {
			r.ReadPacked(0, 0, tt, nil)
		}
		cur, err := r.Series(0, 0)
		if err != nil {
			return
		}
		var packed []float64
		for tt := 0; tt < h.Steps; tt++ {
			packed, _ = cur.ReadPacked(tt, packed)
		}
	})
}
