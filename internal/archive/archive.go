// Package archive implements exaclim's chunked, mixed-precision on-disk
// store for spatio-temporal field series — the subsystem that turns the
// paper's "saving petabytes" claim into measured bytes instead of an
// analytic estimate (see internal/storagemodel for the distinction).
//
// Fields are stored in the spherical harmonic domain, where energy
// concentrates at low degrees: each time step is the real-packed
// coefficient vector of sht.PackReal (length L^2, degree-major, an
// isometry so spectral error equals field L2 error), split into
// contiguous degree bands that each carry their own storage precision —
// float64, float32 or IEEE binary16, mirroring the paper's DP/SP/HP tile
// variants. A spectrum-aware Policy picks each band's width from its
// power fraction under a user-set relative-error budget.
//
// On-disk layout (all integers little-endian):
//
//	[Header][Chunk]...[Chunk][Index][Trailer]
//
// The header freezes the grid, band limit, campaign shape (members x
// scenarios x steps), chunking, and the band table, and ends with a
// CRC32. Each chunk holds up to ChunkSteps consecutive steps of one
// (member, scenario) series, framed with its identity and a CRC32 so
// corruption is detected at read time. Every step record stores, per
// band, a power-of-two scale (applied exactly, so only the target
// precision's rounding error remains) followed by the band's
// coefficients at the band's width. The index maps every (series, chunk)
// to its file offset, enabling O(1) seeks to any (member, scenario, t);
// the trailer locates the index.
package archive

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"exaclim/internal/half"
	"exaclim/internal/sht"
	"exaclim/internal/sphere"
	"exaclim/internal/tile"
)

const (
	headerMagic  = "EXACLIMA"
	trailerMagic = "EXACLIMZ"
	version      = 1

	// DefaultChunkSteps is the steps-per-chunk default: small enough
	// that random access decodes little excess data, large enough that
	// chunk framing is amortized away.
	DefaultChunkSteps = 32

	chunkHeaderLen = 16 // member, scenario, t0, count (4 x uint32)
	trailerLen     = 16 // index offset (uint64) + trailer magic
)

// Band assigns one storage precision to the spherical-harmonic degrees
// [Lo, Hi). In the real packing, degree l occupies indices [l^2,
// (l+1)^2), so a band is a contiguous slice of every step vector.
type Band struct {
	Lo, Hi int
	Prec   tile.Precision
}

// Coeffs returns the number of packed coefficients the band covers.
func (b Band) Coeffs() int { return b.Hi*b.Hi - b.Lo*b.Lo }

// String renders the band like "l∈[2,6) SP".
func (b Band) String() string {
	return fmt.Sprintf("l∈[%d,%d) %s", b.Lo, b.Hi, b.Prec)
}

// UniformBands returns a single band storing every degree below L at
// precision p — the fixed-width reference configurations tests and
// reports compare the planned policy against.
func UniformBands(L int, p tile.Precision) []Band {
	return []Band{{Lo: 0, Hi: L, Prec: p}}
}

// Header describes an archive: the geometry of the stored fields, the
// campaign shape, the chunking, and the per-degree-band precision table.
type Header struct {
	// Grid is the spatial grid fields are synthesized on at read time.
	Grid sphere.Grid
	// L is the spherical-harmonic band limit of the stored coefficients.
	L int
	// Members, Scenarios and Steps fix the campaign shape: the archive
	// holds Members x Scenarios series of Steps steps each.
	Members, Scenarios, Steps int
	// ChunkSteps is the number of consecutive steps per chunk
	// (DefaultChunkSteps when zero).
	ChunkSteps int
	// Bands is the precision table; nil defaults to a single FP32 band.
	Bands []Band
	// MaxRelErr records the Policy budget the bands were planned for
	// (informational; zero when unspecified).
	MaxRelErr float64
}

// withDefaults returns a copy with zero fields defaulted.
func (h Header) withDefaults() Header {
	if h.ChunkSteps == 0 {
		h.ChunkSteps = DefaultChunkSteps
	}
	if h.Bands == nil {
		h.Bands = UniformBands(h.L, tile.FP32)
	}
	return h
}

// validate checks the header is internally consistent.
func (h Header) validate() error {
	if h.L < 1 {
		return fmt.Errorf("archive: invalid band limit %d", h.L)
	}
	if !h.Grid.SupportsBandLimit(h.L) {
		return fmt.Errorf("archive: grid %v does not support band limit %d", h.Grid, h.L)
	}
	if h.Members < 1 || h.Scenarios < 1 || h.Steps < 1 {
		return fmt.Errorf("archive: campaign shape %dx%dx%d needs every dimension >= 1",
			h.Members, h.Scenarios, h.Steps)
	}
	if h.ChunkSteps < 1 {
		return fmt.Errorf("archive: chunk size %d must be >= 1", h.ChunkSteps)
	}
	if len(h.Bands) == 0 {
		return fmt.Errorf("archive: no precision bands")
	}
	lo := 0
	for i, b := range h.Bands {
		if b.Lo != lo || b.Hi <= b.Lo {
			return fmt.Errorf("archive: band %d (%v) breaks contiguous coverage at degree %d", i, b, lo)
		}
		if b.Prec != tile.FP64 && b.Prec != tile.FP32 && b.Prec != tile.FP16 {
			return fmt.Errorf("archive: band %d has unknown precision %d", i, b.Prec)
		}
		lo = b.Hi
	}
	if lo != h.L {
		return fmt.Errorf("archive: bands cover degrees [0,%d), want [0,%d)", lo, h.L)
	}
	// Chunk lengths are stored as uint32 in the index and chunk framing;
	// reject shapes whose chunks could not be addressed losslessly.
	if maxChunk := int64(chunkHeaderLen) + int64(h.ChunkSteps)*int64(h.StepBytes()) + 4; maxChunk > math.MaxUint32 {
		return fmt.Errorf("archive: chunk of %d steps x %d B exceeds the 4 GiB chunk limit; lower ChunkSteps",
			h.ChunkSteps, h.StepBytes())
	}
	return nil
}

// Dim returns the packed coefficient vector length L^2.
func (h Header) Dim() int { return sht.PackDim(h.L) }

// StepBytes returns the encoded size of one step record: per band, an
// 8-byte scale plus the band's coefficients at the band's width.
func (h Header) StepBytes() int {
	n := 0
	for _, b := range h.Bands {
		n += 8 + b.Coeffs()*b.Prec.Bytes()
	}
	return n
}

// Series returns the number of stored series (Members x Scenarios).
func (h Header) Series() int { return h.Members * h.Scenarios }

// Chunks returns the chunk count of one series.
func (h Header) Chunks() int { return (h.Steps + h.ChunkSteps - 1) / h.ChunkSteps }

// seriesID flattens (member, scenario) into the index order.
func (h Header) seriesID(member, scenario int) int { return scenario*h.Members + member }

// checkCoord validates a (member, scenario, t) coordinate.
func (h Header) checkCoord(member, scenario, t int) error {
	if member < 0 || member >= h.Members {
		return fmt.Errorf("archive: member %d out of range [0,%d)", member, h.Members)
	}
	if scenario < 0 || scenario >= h.Scenarios {
		return fmt.Errorf("archive: scenario %d out of range [0,%d)", scenario, h.Scenarios)
	}
	if t < 0 || t >= h.Steps {
		return fmt.Errorf("archive: step %d out of range [0,%d)", t, h.Steps)
	}
	return nil
}

// encodeHeader serializes the header with a trailing CRC32.
func encodeHeader(h Header) []byte {
	buf := make([]byte, 0, 56+9*len(h.Bands))
	buf = append(buf, headerMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.L))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.Grid.NLat))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.Grid.NLon))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.Members))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.Scenarios))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.Steps))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.ChunkSteps))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(h.MaxRelErr))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(h.Bands)))
	for _, b := range h.Bands {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(b.Lo))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(b.Hi))
		buf = append(buf, byte(b.Prec))
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// headerPrefixLen is the fixed-size portion before the band table.
const headerPrefixLen = 52

// decodeHeader parses and validates a serialized header, returning the
// header and its total encoded length.
func decodeHeader(data []byte) (Header, int, error) {
	var h Header
	if len(data) < headerPrefixLen {
		return h, 0, fmt.Errorf("archive: file too short for header (%d bytes)", len(data))
	}
	if string(data[:8]) != headerMagic {
		return h, 0, fmt.Errorf("archive: bad magic %q", data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != version {
		return h, 0, fmt.Errorf("archive: unsupported version %d", v)
	}
	h.L = int(binary.LittleEndian.Uint32(data[12:]))
	nlat := int(binary.LittleEndian.Uint32(data[16:]))
	nlon := int(binary.LittleEndian.Uint32(data[20:]))
	h.Members = int(binary.LittleEndian.Uint32(data[24:]))
	h.Scenarios = int(binary.LittleEndian.Uint32(data[28:]))
	h.Steps = int(binary.LittleEndian.Uint32(data[32:]))
	h.ChunkSteps = int(binary.LittleEndian.Uint32(data[36:]))
	h.MaxRelErr = math.Float64frombits(binary.LittleEndian.Uint64(data[40:]))
	nbands := int(binary.LittleEndian.Uint32(data[48:]))
	if nbands < 0 || nbands > 1<<20 {
		return h, 0, fmt.Errorf("archive: implausible band count %d", nbands)
	}
	total := headerPrefixLen + 9*nbands + 4
	if len(data) < total {
		return h, 0, fmt.Errorf("archive: file too short for %d-band header", nbands)
	}
	if nlat < 2 || nlon < 1 {
		return h, 0, fmt.Errorf("archive: invalid grid %dx%d", nlat, nlon)
	}
	h.Grid = sphere.NewGrid(nlat, nlon)
	h.Bands = make([]Band, nbands)
	for i := range h.Bands {
		off := headerPrefixLen + 9*i
		h.Bands[i] = Band{
			Lo:   int(binary.LittleEndian.Uint32(data[off:])),
			Hi:   int(binary.LittleEndian.Uint32(data[off+4:])),
			Prec: tile.Precision(data[off+8]),
		}
	}
	want := binary.LittleEndian.Uint32(data[total-4:])
	if got := crc32.ChecksumIEEE(data[:total-4]); got != want {
		return h, 0, fmt.Errorf("archive: header checksum mismatch (corrupt header)")
	}
	if err := h.validate(); err != nil {
		return h, 0, err
	}
	return h, total, nil
}

// scaleFor returns the power-of-two scale that places maxAbs in
// [256, 512). Power-of-two scaling is exact in binary floating point, so
// the only loss a scaled band suffers is the target precision's own
// rounding, while the [256, 512) window keeps binary16 payloads far from
// overflow (65504) and — for all but a 2^-22 relative tail — out of the
// gradual-underflow range.
func scaleFor(maxAbs float64) float64 {
	if maxAbs == 0 || math.IsInf(maxAbs, 0) || math.IsNaN(maxAbs) {
		return 1
	}
	s := math.Ldexp(1, math.Ilogb(maxAbs)-8)
	if s == 0 || math.IsInf(s, 0) {
		return 1
	}
	return s
}

// QuantErrBound returns the guaranteed absolute quantization error of
// storing value v at precision p under band scale s: the precision's
// unit roundoff times |v| plus a subnormal-spacing term (values whose
// scaled magnitude falls into the target format's gradual-underflow
// range round with absolute, not relative, error). The round-trip
// property tests enforce this bound element-wise.
func QuantErrBound(p tile.Precision, v, s float64) float64 {
	switch p {
	case tile.FP64:
		return 0
	case tile.FP32:
		return 0x1p-24*math.Abs(v) + s*0x1p-149
	case tile.FP16:
		return 0x1p-11*math.Abs(v) + s*0x1p-24
	}
	panic(fmt.Sprintf("archive: unknown precision %d", p))
}

// appendStep encodes one packed coefficient vector under the band table,
// returning the extended buffer together with the squared quantization
// error and squared norm of the step (so writers can report measured
// relative reconstruction error without a decode pass).
func appendStep(buf []byte, bands []Band, packed []float64) (out []byte, err2, norm2 float64) {
	for _, b := range bands {
		seg := packed[b.Lo*b.Lo : b.Hi*b.Hi]
		maxAbs := 0.0
		for _, v := range seg {
			norm2 += v * v
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		s := 1.0
		if b.Prec != tile.FP64 {
			s = scaleFor(maxAbs)
		}
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s))
		inv := 1 / s
		switch b.Prec {
		case tile.FP64:
			for _, v := range seg {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
			}
		case tile.FP32:
			for _, v := range seg {
				q := float32(v * inv)
				buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(q))
				d := v - float64(q)*s
				err2 += d * d
			}
		case tile.FP16:
			for _, v := range seg {
				q := half.FromFloat64(v * inv)
				buf = binary.LittleEndian.AppendUint16(buf, uint16(q))
				d := v - q.Float64()*s
				err2 += d * d
			}
		}
	}
	return buf, err2, norm2
}

// decodeStep decodes one step record into dst (length L^2).
func decodeStep(data []byte, bands []Band, dst []float64) error {
	off := 0
	for _, b := range bands {
		if off+8 > len(data) {
			return fmt.Errorf("archive: step record truncated at band %v", b)
		}
		s := math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		off += 8
		n := b.Coeffs()
		seg := dst[b.Lo*b.Lo : b.Hi*b.Hi]
		switch b.Prec {
		case tile.FP64:
			if off+8*n > len(data) {
				return fmt.Errorf("archive: step record truncated at band %v", b)
			}
			for i := 0; i < n; i++ {
				seg[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off+8*i:]))
			}
			off += 8 * n
		case tile.FP32:
			if off+4*n > len(data) {
				return fmt.Errorf("archive: step record truncated at band %v", b)
			}
			for i := 0; i < n; i++ {
				seg[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(data[off+4*i:]))) * s
			}
			off += 4 * n
		case tile.FP16:
			if off+2*n > len(data) {
				return fmt.Errorf("archive: step record truncated at band %v", b)
			}
			for i := 0; i < n; i++ {
				seg[i] = half.Float16(binary.LittleEndian.Uint16(data[off+2*i:])).Float64() * s
			}
			off += 2 * n
		}
	}
	if off != len(data) {
		return fmt.Errorf("archive: step record has %d trailing bytes", len(data)-off)
	}
	return nil
}

// chunkRef locates one chunk in the file.
type chunkRef struct {
	off    int64
	length uint32
}

// encodeIndex serializes the per-series chunk tables with a CRC32.
func encodeIndex(index [][]chunkRef) []byte {
	n := 4
	for _, refs := range index {
		n += 4 + 12*len(refs)
	}
	buf := make([]byte, 0, n+4)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(index)))
	for _, refs := range index {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(refs)))
		for _, r := range refs {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(r.off))
			buf = binary.LittleEndian.AppendUint32(buf, r.length)
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// decodeIndex parses the index block, validating its CRC and shape
// against the header.
func decodeIndex(data []byte, h Header) ([][]chunkRef, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("archive: index block too short (%d bytes)", len(data))
	}
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(data[:len(data)-4]); got != want {
		return nil, fmt.Errorf("archive: index checksum mismatch (corrupt index)")
	}
	data = data[:len(data)-4]
	nSeries := int(binary.LittleEndian.Uint32(data))
	if nSeries != h.Series() {
		return nil, fmt.Errorf("archive: index holds %d series, header says %d", nSeries, h.Series())
	}
	off := 4
	index := make([][]chunkRef, nSeries)
	for sid := range index {
		if off+4 > len(data) {
			return nil, fmt.Errorf("archive: index truncated at series %d", sid)
		}
		nChunks := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if nChunks != h.Chunks() {
			return nil, fmt.Errorf("archive: series %d has %d chunks, want %d", sid, nChunks, h.Chunks())
		}
		refs := make([]chunkRef, nChunks)
		for k := range refs {
			if off+12 > len(data) {
				return nil, fmt.Errorf("archive: index truncated at series %d chunk %d", sid, k)
			}
			refs[k] = chunkRef{
				off:    int64(binary.LittleEndian.Uint64(data[off:])),
				length: binary.LittleEndian.Uint32(data[off+8:]),
			}
			off += 12
		}
		index[sid] = refs
	}
	if off != len(data) {
		return nil, fmt.Errorf("archive: index has %d trailing bytes", len(data)-off)
	}
	return index, nil
}
