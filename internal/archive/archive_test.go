package archive

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"exaclim/internal/sht"
	"exaclim/internal/sphere"
	"exaclim/internal/tile"
)

// decayingPacked fills a packed coefficient vector with a climate-like
// decaying spectrum: degree l draws from N(0, sigma0 * decay^l).
func decayingPacked(rng *rand.Rand, L int, sigma0, decay float64) []float64 {
	packed := make([]float64, sht.PackDim(L))
	for l := 0; l < L; l++ {
		sigma := sigma0 * math.Pow(decay, float64(l))
		for i := l * l; i < (l+1)*(l+1); i++ {
			packed[i] = sigma * rng.NormFloat64()
		}
	}
	return packed
}

// packedSpectrum recovers C_l from a packed vector via the isometry.
func packedSpectrum(packed []float64, L int) []float64 {
	out := make([]float64, L)
	for l := 0; l < L; l++ {
		sum := 0.0
		for i := l * l; i < (l+1)*(l+1); i++ {
			sum += packed[i] * packed[i]
		}
		out[l] = sum / float64(2*l+1)
	}
	return out
}

func testHeader(L int, bands []Band) Header {
	return Header{
		Grid: sphere.GridForBandLimit(L), L: L,
		Members: 2, Scenarios: 2, Steps: 7, ChunkSteps: 3,
		Bands: bands,
	}
}

// writeArchive writes a full campaign of the given packed vectors
// (indexed [scenario][member][t]) and returns the encoded file.
func writeArchive(t *testing.T, h Header, data [][][][]float64) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	for s := range data {
		for m := range data[s] {
			for tt := range data[s][m] {
				if err := w.AddPacked(m, s, tt, data[s][m][tt]); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func campaignData(rng *rand.Rand, h Header, sigma0, decay float64) [][][][]float64 {
	data := make([][][][]float64, h.Scenarios)
	for s := range data {
		data[s] = make([][][]float64, h.Members)
		for m := range data[s] {
			data[s][m] = make([][]float64, h.Steps)
			for tt := range data[s][m] {
				data[s][m][tt] = decayingPacked(rng, h.L, sigma0, decay)
			}
		}
	}
	return data
}

// TestHeaderRoundTrip pins the binary header codec.
func TestHeaderRoundTrip(t *testing.T) {
	h := testHeader(8, []Band{{0, 2, tile.FP64}, {2, 5, tile.FP32}, {5, 8, tile.FP16}})
	h.MaxRelErr = 2.5e-4
	enc := encodeHeader(h.withDefaults())
	got, n, err := decodeHeader(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Errorf("decoded length %d, want %d", n, len(enc))
	}
	if got.L != h.L || got.Grid != h.Grid || got.Members != h.Members ||
		got.Scenarios != h.Scenarios || got.Steps != h.Steps ||
		got.ChunkSteps != h.ChunkSteps || got.MaxRelErr != h.MaxRelErr {
		t.Errorf("header round trip mismatch: got %+v, want %+v", got, h)
	}
	if len(got.Bands) != len(h.Bands) {
		t.Fatalf("got %d bands, want %d", len(got.Bands), len(h.Bands))
	}
	for i := range got.Bands {
		if got.Bands[i] != h.Bands[i] {
			t.Errorf("band %d: got %v, want %v", i, got.Bands[i], h.Bands[i])
		}
	}
}

// TestRoundTripErrorBound is the core property test: write -> read must
// reproduce every coefficient within QuantErrBound at every band
// precision, for the three uniform variants and a policy-planned mixed
// layout.
func TestRoundTripErrorBound(t *testing.T) {
	const L = 8
	rng := rand.New(rand.NewSource(11))
	layouts := map[string][]Band{
		"DP": UniformBands(L, tile.FP64),
		"SP": UniformBands(L, tile.FP32),
		"HP": UniformBands(L, tile.FP16),
	}
	// Plan a mixed layout from the true generating spectrum.
	policy := DefaultPolicy()
	spec := make([]float64, L)
	for l := range spec {
		sigma := 100 * math.Pow(0.4, float64(l))
		spec[l] = sigma * sigma
	}
	layouts["planned"] = policy.PlanBands(spec)
	if len(layouts["planned"]) < 2 {
		t.Fatalf("planned layout %v is not mixed precision", layouts["planned"])
	}

	for name, bands := range layouts {
		h := testHeader(L, bands)
		h.MaxRelErr = policy.MaxRelErr
		data := campaignData(rng, h, 100, 0.4)
		file := writeArchive(t, h, data)
		r, err := NewReader(bytes.NewReader(file), int64(len(file)))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var packed []float64
		for s := 0; s < h.Scenarios; s++ {
			for m := 0; m < h.Members; m++ {
				for tt := 0; tt < h.Steps; tt++ {
					packed, err = r.ReadPacked(m, s, tt, packed)
					if err != nil {
						t.Fatalf("%s: read (%d,%d,%d): %v", name, m, s, tt, err)
					}
					want := data[s][m][tt]
					var err2, norm2 float64
					for _, b := range bands {
						seg := want[b.Lo*b.Lo : b.Hi*b.Hi]
						maxAbs := 0.0
						for _, v := range seg {
							if a := math.Abs(v); a > maxAbs {
								maxAbs = a
							}
						}
						scale := 1.0
						if b.Prec != tile.FP64 {
							scale = scaleFor(maxAbs)
						}
						for i, v := range seg {
							idx := b.Lo*b.Lo + i
							d := math.Abs(packed[idx] - v)
							if bound := QuantErrBound(b.Prec, v, scale); d > bound {
								t.Fatalf("%s: (%d,%d,%d) coeff %d: |err| %g exceeds bound %g (v=%g, band %v)",
									name, m, s, tt, idx, d, bound, v, b)
							}
							err2 += d * d
						}
					}
					for _, v := range want {
						norm2 += v * v
					}
					if name == "planned" {
						if rel := math.Sqrt(err2 / norm2); rel > policy.MaxRelErr {
							t.Errorf("planned layout: step relative L2 error %g exceeds budget %g", rel, policy.MaxRelErr)
						}
					}
				}
			}
		}
	}
}

// TestPlanBandsSpendsByPower checks the planner's shape: a decaying
// spectrum gets wide words at low degrees and binary16 at the tail, and
// a tighter budget never chooses narrower words.
func TestPlanBandsSpendsByPower(t *testing.T) {
	const L = 24
	spec := make([]float64, L)
	for l := range spec {
		spec[l] = math.Pow(10, -float64(l)/3)
	}
	loose := Policy{MaxRelErr: 1e-2}.PlanBands(spec)
	tight := Policy{MaxRelErr: 1e-8}.PlanBands(spec)
	perDegree := func(bands []Band) []tile.Precision {
		out := make([]tile.Precision, L)
		for _, b := range bands {
			for l := b.Lo; l < b.Hi; l++ {
				out[l] = b.Prec
			}
		}
		return out
	}
	lo, ti := perDegree(loose), perDegree(tight)
	for l := 0; l < L; l++ {
		if ti[l] > lo[l] { // FP64 < FP32 < FP16 in iota order
			t.Errorf("degree %d: tight budget chose %v, looser budget %v", l, ti[l], lo[l])
		}
	}
	if lo[L-1] != tile.FP16 {
		t.Errorf("loose budget should leave the tail at HP, got %v", lo[L-1])
	}
	if ti[0] != tile.FP64 {
		t.Errorf("tight budget should hold degree 0 at DP, got %v", ti[0])
	}
	// Bands must tile [0, L) — validate() enforces contiguity.
	h := testHeader(L, tight)
	h.Grid = sphere.GridForBandLimit(L)
	if err := h.validate(); err != nil {
		t.Errorf("planned bands invalid: %v", err)
	}
	if got := (Policy{}).PlanBands(nil); got != nil {
		t.Errorf("empty spectrum should plan no bands, got %v", got)
	}
	zero := (Policy{}).PlanBands(make([]float64, 4))
	if len(zero) != 1 || zero[0].Prec != tile.FP16 {
		t.Errorf("zero-power spectrum should plan a single HP band, got %v", zero)
	}
}

// TestAddFieldRoundTrip drives the analysis path: a band-limited field
// archived at full precision must reconstruct to floating-point
// accuracy, confirming the chunk plumbing adds no error of its own.
func TestAddFieldRoundTrip(t *testing.T) {
	const L = 8
	rng := rand.New(rand.NewSource(4))
	grid := sphere.GridForBandLimit(L)
	plan, err := sht.NewPlan(grid, L)
	if err != nil {
		t.Fatal(err)
	}
	h := Header{Grid: grid, L: L, Members: 1, Scenarios: 1, Steps: 3,
		ChunkSteps: 2, Bands: UniformBands(L, tile.FP64)}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	fields := make([]sphere.Field, h.Steps)
	for tt := range fields {
		fields[tt] = plan.Synthesize(sht.UnpackReal(decayingPacked(rng, L, 10, 0.5)))
		if err := w.AddField(0, 0, tt, fields[tt]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	for tt := range fields {
		got, err := r.ReadField(0, 0, tt)
		if err != nil {
			t.Fatal(err)
		}
		for pix := range got.Data {
			if d := math.Abs(got.Data[pix] - fields[tt].Data[pix]); d > 1e-9 {
				t.Fatalf("step %d pixel %d: |err| %g after DP round trip", tt, pix, d)
			}
		}
	}
	// EachField must stream the same values.
	tcount := 0
	err = r.EachField(0, 0, func(tt int, f sphere.Field) error {
		for pix := range f.Data {
			if d := math.Abs(f.Data[pix] - fields[tt].Data[pix]); d > 1e-9 {
				return fmt.Errorf("step %d pixel %d: |err| %g", tt, pix, d)
			}
		}
		tcount++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if tcount != h.Steps {
		t.Errorf("EachField visited %d steps, want %d", tcount, h.Steps)
	}
}

// TestConcurrentWriters exercises the EmulateEnsemble usage under -race:
// one goroutine per member appending its series in order.
func TestConcurrentWriters(t *testing.T) {
	const L = 6
	h := Header{Grid: sphere.GridForBandLimit(L), L: L,
		Members: 4, Scenarios: 1, Steps: 20, ChunkSteps: 6,
		Bands: UniformBands(L, tile.FP32)}
	data := campaignData(rand.New(rand.NewSource(7)), h, 10, 0.6)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, h.Members)
	for m := 0; m < h.Members; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			for tt := 0; tt < h.Steps; tt++ {
				if err := w.AddPacked(m, 0, tt, data[0][m][tt]); err != nil {
					errs[m] = err
					return
				}
			}
		}(m)
	}
	wg.Wait()
	for m, err := range errs {
		if err != nil {
			t.Fatalf("member %d: %v", m, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	var packed []float64
	for m := 0; m < h.Members; m++ {
		for tt := 0; tt < h.Steps; tt++ {
			packed, err = r.ReadPacked(m, 0, tt, packed)
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range data[0][m][tt] {
				if d := math.Abs(packed[i] - v); d > QuantErrBound(tile.FP32, v, scaleFor(500)) {
					t.Fatalf("member %d step %d coeff %d: error %g after concurrent write", m, tt, i, d)
				}
			}
		}
	}
}

// TestMeasuredCompression is the acceptance check behind `exaclim
// archive`: a synthetic campaign with a climate-like spectrum must
// measure at least 4x smaller than float32 raw grids under the default
// policy, and the writer-tracked error must respect the budget.
func TestMeasuredCompression(t *testing.T) {
	const L = 16
	rng := rand.New(rand.NewSource(2))
	grid := sphere.GridForBandLimit(24) // the CLI's default data grid
	// Plan from the generating spectrum (big mean at l=0, decaying tail).
	spec := make([]float64, L)
	for l := range spec {
		sigma := 500 * math.Pow(0.45, float64(l))
		spec[l] = sigma * sigma
	}
	policy := DefaultPolicy()
	h := Header{Grid: grid, L: L, Members: 2, Scenarios: 1, Steps: 64,
		Bands: policy.PlanBands(spec), MaxRelErr: policy.MaxRelErr}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < h.Members; m++ {
		for tt := 0; tt < h.Steps; tt++ {
			packed := make([]float64, sht.PackDim(L))
			for l := 0; l < L; l++ {
				sigma := 500 * math.Pow(0.45, float64(l))
				for i := l * l; i < (l+1)*(l+1); i++ {
					packed[i] = sigma * rng.NormFloat64()
				}
			}
			if err := w.AddPacked(m, 0, tt, packed); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	fields := int64(h.Members) * int64(h.Steps)
	if st.Fields != fields {
		t.Fatalf("stats count %d fields, want %d", st.Fields, fields)
	}
	raw := float64(fields) * float64(grid.Points()) * 4
	ratio := raw / float64(st.Bytes)
	if ratio < 4 {
		t.Errorf("measured compression %.2fx vs float32 raw grids, want >= 4x (%.0f B/field)",
			ratio, st.BytesPerField)
	}
	if st.MaxRelErr > policy.MaxRelErr {
		t.Errorf("measured max relative error %g exceeds policy budget %g", st.MaxRelErr, policy.MaxRelErr)
	}
	if st.MeanRelErr <= 0 || st.MeanRelErr > st.MaxRelErr {
		t.Errorf("mean relative error %g out of range (max %g)", st.MeanRelErr, st.MaxRelErr)
	}
}

// TestWriterValidation covers the rejection paths: bad headers,
// out-of-order and out-of-range appends, incomplete Close.
func TestWriterValidation(t *testing.T) {
	const L = 6
	bands := UniformBands(L, tile.FP32)
	bad := []Header{
		{Grid: sphere.NewGrid(4, 8), L: 6, Members: 1, Scenarios: 1, Steps: 1, Bands: bands},                           // grid too coarse
		{Grid: sphere.GridForBandLimit(L), L: L, Members: 0, Scenarios: 1, Steps: 1, Bands: bands},                     // no members
		{Grid: sphere.GridForBandLimit(L), L: L, Members: 1, Scenarios: 1, Steps: 1, Bands: []Band{{1, L, tile.FP32}}}, // gap at 0
		{Grid: sphere.GridForBandLimit(L), L: L, Members: 1, Scenarios: 1, Steps: 1, Bands: []Band{{0, 4, tile.FP32}}}, // short coverage
		{Grid: sphere.GridForBandLimit(L), L: L, Members: 1, Scenarios: 1, Steps: 1, Bands: []Band{{0, L, 99}}},        // unknown precision
		{Grid: sphere.GridForBandLimit(L), L: L, Members: 1, Scenarios: 1, Steps: 1, ChunkSteps: 3e7, Bands: bands},    // chunk length overflows uint32
	}
	for i, h := range bad {
		if _, err := NewWriter(io.Discard, h); err == nil {
			t.Errorf("bad header %d accepted", i)
		}
	}

	h := Header{Grid: sphere.GridForBandLimit(L), L: L, Members: 2, Scenarios: 1, Steps: 4, Bands: bands}
	w, err := NewWriter(io.Discard, h)
	if err != nil {
		t.Fatal(err)
	}
	packed := make([]float64, sht.PackDim(L))
	if err := w.AddPacked(0, 0, 1, packed); err == nil {
		t.Error("out-of-order step accepted")
	}
	if err := w.AddPacked(2, 0, 0, packed); err == nil {
		t.Error("member out of range accepted")
	}
	if err := w.AddPacked(0, 1, 0, packed); err == nil {
		t.Error("scenario out of range accepted")
	}
	if err := w.AddPacked(0, 0, 0, packed[:3]); err == nil {
		t.Error("short packed vector accepted")
	}
	if err := w.AddPacked(0, 0, 0, packed); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Errorf("incomplete campaign Close error = %v, want incomplete-series error", err)
	}
}

// failWriter accepts the first budget bytes then fails every write,
// simulating a disk filling up mid-campaign.
type failWriter struct{ budget int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.budget < len(p) {
		return 0, errors.New("disk full")
	}
	f.budget -= len(p)
	return len(p), nil
}

// TestWriterStickyError pins the fast-fail contract: once a chunk write
// fails, every later append must surface the error instead of silently
// buffering the rest of the campaign in memory.
func TestWriterStickyError(t *testing.T) {
	const L = 6
	h := Header{Grid: sphere.GridForBandLimit(L), L: L,
		Members: 1, Scenarios: 1, Steps: 10, ChunkSteps: 2,
		Bands: UniformBands(L, tile.FP16)}
	fw := &failWriter{budget: len(encodeHeader(h.withDefaults()))} // header fits, nothing else does
	w, err := NewWriter(fw, h)
	if err != nil {
		t.Fatal(err)
	}
	packed := make([]float64, sht.PackDim(L))
	if err := w.AddPacked(0, 0, 0, packed); err != nil {
		t.Fatalf("buffered step should not fail: %v", err)
	}
	if err := w.AddPacked(0, 0, 1, packed); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("chunk flush error = %v, want disk full", err)
	}
	for tt := 2; tt < 5; tt++ {
		if err := w.AddPacked(0, 0, tt, packed); err == nil || !strings.Contains(err.Error(), "disk full") {
			t.Fatalf("step %d after failed flush: err = %v, want sticky disk full", tt, err)
		}
	}
	if err := w.Close(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("Close error = %v, want sticky disk full", err)
	}
}

// TestCorruptionDetection covers the read-side error paths: corrupted
// header, truncated file, and a bit-flipped chunk must all surface as
// errors, never as silently wrong data.
func TestCorruptionDetection(t *testing.T) {
	const L = 6
	h := Header{Grid: sphere.GridForBandLimit(L), L: L,
		Members: 1, Scenarios: 1, Steps: 5, ChunkSteps: 2,
		Bands: UniformBands(L, tile.FP16)}
	data := campaignData(rand.New(rand.NewSource(5)), h, 10, 0.5)
	file := writeArchive(t, h, data)

	open := func(b []byte) (*Reader, error) { return NewReader(bytes.NewReader(b), int64(len(b))) }
	if _, err := open(file); err != nil {
		t.Fatalf("pristine file failed to open: %v", err)
	}

	// Corrupted header: flip a byte inside the fixed prefix.
	corrupt := append([]byte(nil), file...)
	corrupt[20] ^= 0xff
	if _, err := open(corrupt); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("corrupted header error = %v, want checksum mismatch", err)
	}

	// Bad magic.
	corrupt = append([]byte(nil), file...)
	corrupt[0] ^= 0xff
	if _, err := open(corrupt); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic error = %v, want bad magic", err)
	}

	// Truncated file: the trailer (and with it the index) is gone.
	if _, err := open(file[:len(file)-10]); err == nil {
		t.Error("truncated file opened without error")
	}

	// Bit flip inside the first chunk: Open succeeds (the index is
	// intact) but reading any step of that chunk reports the CRC.
	hlen := headerPrefixLen + 9*len(h.Bands) + 4
	corrupt = append([]byte(nil), file...)
	corrupt[hlen+chunkHeaderLen+5] ^= 0x01
	r, err := open(corrupt)
	if err != nil {
		t.Fatalf("chunk-corrupted file should still open (index intact): %v", err)
	}
	if _, err := r.ReadPacked(0, 0, 0, nil); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("corrupt chunk read error = %v, want checksum mismatch", err)
	}
	// Steps in other chunks remain readable.
	if _, err := r.ReadPacked(0, 0, 4, nil); err != nil {
		t.Errorf("undamaged chunk unreadable: %v", err)
	}

	// Reads out of range.
	r2, err := open(file)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.ReadPacked(1, 0, 0, nil); err == nil {
		t.Error("member out of range accepted by reader")
	}
	if _, err := r2.ReadPacked(0, 0, 5, nil); err == nil {
		t.Error("step out of range accepted by reader")
	}
}

func benchArchive(b *testing.B, L int) (Header, []float64) {
	spec := make([]float64, L)
	for l := range spec {
		sigma := 100 * math.Pow(0.6, float64(l))
		spec[l] = sigma * sigma
	}
	h := Header{Grid: sphere.GridForBandLimit(L), L: L,
		Members: 1, Scenarios: 1, Steps: 1 << 30,
		Bands: DefaultPolicy().PlanBands(spec)}
	return h, decayingPacked(rand.New(rand.NewSource(1)), L, 100, 0.6)
}

// BenchmarkArchiveWrite measures quantize+encode throughput of the
// streaming writer (no file system in the loop).
func BenchmarkArchiveWrite(b *testing.B) {
	h, packed := benchArchive(b, 32)
	w, err := NewWriter(io.Discard, h)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(h.StepBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.AddPacked(0, 0, i, packed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkArchiveRead measures seek+decode throughput of random access
// into an in-memory archive.
func BenchmarkArchiveRead(b *testing.B) {
	h, packed := benchArchive(b, 32)
	h.Steps = 256
	var buf bytes.Buffer
	w, err := NewWriter(&buf, h)
	if err != nil {
		b.Fatal(err)
	}
	for tt := 0; tt < h.Steps; tt++ {
		if err := w.AddPacked(0, 0, tt, packed); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]float64, h.Dim())
	b.SetBytes(int64(h.StepBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dst, err = r.ReadPacked(0, 0, (i*37)%h.Steps, dst); err != nil {
			b.Fatal(err)
		}
	}
}
