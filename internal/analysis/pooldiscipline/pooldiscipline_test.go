package pooldiscipline_test

import (
	"testing"

	"exaclim/internal/analysis/vettest"
)

// TestPooldiscipline drives the built vettool over the shared testdata module
// and diffs its JSON diagnostics against the want annotations there.
func TestPooldisciplineGolden(t *testing.T) {
	vettest.Run(t, "pooldiscipline")
}
