// Package pooldiscipline defines an analyzer enforcing the scratch-pool
// protocol of the hot paths (serve field loads, archive writer packing,
// parallel workers): a value taken from a sync.Pool must be returned by
// Put on every path out of the function. A leaked Get costs a fresh
// allocation per request forever after — the pool silently degrades to
// make(), which is exactly the regression the pools exist to prevent,
// and -race tests cannot see it because nothing races.
//
// The analysis is deliberately conservative: a Get value that escapes
// the function (returned, stored, captured by a closure, or passed to
// anything but Put) transfers ownership and is not tracked. What
// remains — the dominant idiom `x := pool.Get().(*T); ...; pool.Put(x)`
// — is checked path-sensitively on the control-flow graph, so an early
// `return err` between Get and Put is caught.
package pooldiscipline

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name:     "pooldiscipline",
	Doc:      "require sync.Pool.Get values to reach Put on every return path",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		checkFunc(pass, fd, cfgs.FuncDecl(fd))
	})
	return nil, nil
}

// getBinding is one `x := pool.Get()` (possibly type-asserted) in a
// function body.
type getBinding struct {
	assign *ast.AssignStmt
	ident  *ast.Ident
	obj    types.Object
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, g *cfg.CFG) {
	var gets []getBinding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate function; Get there is its own story
		}
		switch n := n.(type) {
		case *ast.ExprStmt:
			// A bare pool.Get() drops the value on the floor.
			if call, ok := n.X.(*ast.CallExpr); ok && isPoolCall(pass, call, "Get") {
				pass.Reportf(call.Pos(), "sync.Pool.Get result discarded; the value can never be Put back")
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return true
			}
			rhs := n.Rhs[0]
			if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
				rhs = ta.X
			}
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isPoolCall(pass, call, "Get") {
				return true
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				pass.Reportf(call.Pos(), "sync.Pool.Get result discarded; the value can never be Put back")
				return true
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj != nil {
				gets = append(gets, getBinding{assign: n, ident: id, obj: obj})
			}
		}
		return true
	})
	if len(gets) == 0 || g == nil {
		return
	}
	parents := parentMap(fd.Body)
	for _, get := range gets {
		checkBinding(pass, fd, g, parents, get)
	}
}

func checkBinding(pass *analysis.Pass, fd *ast.FuncDecl, g *cfg.CFG, parents map[ast.Node]ast.Node, get getBinding) {
	var putCalls []*ast.CallExpr
	deferredPut := false
	escaped := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if escaped {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if pass.TypesInfo.Uses[id] != get.obj && pass.TypesInfo.Defs[id] != get.obj {
			return true
		}
		// Inside a closure the value's lifetime is unknowable here.
		for p := parents[ast.Node(id)]; p != nil; p = parents[p] {
			if _, ok := p.(*ast.FuncLit); ok {
				escaped = true
				return false
			}
		}
		switch p := parents[ast.Node(id)].(type) {
		case *ast.AssignStmt:
			if p == get.assign {
				return true // its own binding
			}
			for _, l := range p.Lhs {
				if l == ast.Expr(id) {
					escaped = true // rebound; tracking ends
					return false
				}
			}
			escaped = true // appears on an RHS: stored somewhere
			return false
		case *ast.SelectorExpr:
			if p.X == ast.Expr(id) {
				return true // field access x.f: reads/writes into the value
			}
			return true
		case *ast.StarExpr, *ast.IndexExpr, *ast.SliceExpr:
			return true // dereference/index of the value
		case *ast.CallExpr:
			// Allowed only as the argument of a Put on a sync.Pool.
			if isPoolCall(pass, p, "Put") && len(p.Args) == 1 && p.Args[0] == ast.Expr(id) {
				putCalls = append(putCalls, p)
				for q := parents[ast.Node(p)]; q != nil; q = parents[q] {
					if _, ok := q.(*ast.DeferStmt); ok {
						if p.Pos() > get.assign.Pos() {
							deferredPut = true
						}
						break
					}
				}
				return true
			}
			escaped = true // handed to some other function
			return false
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.UnaryExpr,
			*ast.SendStmt, *ast.KeyValueExpr:
			escaped = true
			return false
		}
		return true
	})
	if escaped || deferredPut {
		return
	}
	// Path-sensitive check: from the Get, every path to a return must
	// pass a Put.
	putPos := make([]interval, 0, len(putCalls))
	for _, p := range putCalls {
		putPos = append(putPos, interval{p.Pos(), p.End()})
	}
	getBlock, getIdx := locate(g, get.assign)
	if getBlock == nil {
		return
	}
	seen := map[*cfg.Block]bool{}
	var leak ast.Node
	var walk func(b *cfg.Block, from int) bool // true when a leaking path exists
	walk = func(b *cfg.Block, from int) bool {
		for i := from; i < len(b.Nodes); i++ {
			for _, iv := range putPos {
				if b.Nodes[i].Pos() <= iv.pos && iv.end <= b.Nodes[i].End() {
					return false // Put reached on this path
				}
			}
		}
		if len(b.Succs) == 0 {
			if exitNeedsPut(b) {
				leak = exitNode(b)
				return true
			}
			return false
		}
		for _, s := range b.Succs {
			if seen[s] {
				continue
			}
			seen[s] = true
			if walk(s, 0) {
				return true
			}
		}
		return false
	}
	if walk(getBlock, getIdx+1) && leak != nil {
		pass.Reportf(get.assign.Pos(),
			"sync.Pool.Get value %s is not returned to the pool on every path (leaks at the return around line %d)",
			get.ident.Name, pass.Fset.Position(leak.Pos()).Line)
	}
}

type interval struct{ pos, end token.Pos }

// locate finds the block and node index holding stmt.
func locate(g *cfg.CFG, stmt ast.Stmt) (*cfg.Block, int) {
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if n == ast.Node(stmt) {
				return b, i
			}
			if n.Pos() <= stmt.Pos() && stmt.End() <= n.End() {
				return b, i
			}
		}
	}
	return nil, 0
}

// exitNeedsPut decides whether a no-successor block ends a path the
// pool value must be returned on: an explicit return, or falling off
// the end of the function. Paths that die in panic or a fatal-style
// call are exempt — the process (or test) is going down anyway.
func exitNeedsPut(b *cfg.Block) bool {
	if !b.Live {
		return false
	}
	if len(b.Nodes) == 0 {
		return b.Kind == cfg.KindBody || b.Kind == cfg.KindIfDone ||
			b.Kind == cfg.KindForDone || b.Kind == cfg.KindRangeDone ||
			b.Kind == cfg.KindSwitchDone || b.Kind == cfg.KindSelectDone
	}
	last := b.Nodes[len(b.Nodes)-1]
	if _, ok := last.(*ast.ReturnStmt); ok {
		return true
	}
	if es, ok := last.(*ast.ExprStmt); ok {
		if call, ok := es.X.(*ast.CallExpr); ok && isNoReturnCall(call) {
			return false
		}
	}
	return true
}

func exitNode(b *cfg.Block) ast.Node {
	if len(b.Nodes) > 0 {
		return b.Nodes[len(b.Nodes)-1]
	}
	return nil
}

// isNoReturnCall matches panic and the conventional fatal helpers.
func isNoReturnCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic" || fun.Name == "fatal"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Exit", "Fatal", "Fatalf", "Fatalln", "Goexit", "Panic", "Panicf", "Panicln":
			return true
		}
	}
	return false
}

// isPoolCall reports whether call is sync.Pool method name on a Pool or
// *Pool receiver.
func isPoolCall(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	for {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

// parentMap records each node's syntactic parent.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
