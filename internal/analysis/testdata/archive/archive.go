// Package archive is golden-test input for the lockedcall analyzer's
// chunk-decode detection, mirroring the real Reader's shard shape.
package archive

import "sync"

type shard struct {
	mu    sync.Mutex
	chunk int
	buf   []byte
}

// Reader mirrors the real sharded chunk reader.
type Reader struct {
	shards []shard
}

func (r *Reader) readChunk(k int) ([]byte, error) {
	return make([]byte, 8), nil
}

func decodeStep(rec []byte, dst []float64) error {
	return nil
}

// Decoding while the shard lock is held blocks every reader of the
// shard for the duration.
func (r *Reader) badRead(dst []float64) error {
	sh := &r.shards[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return decodeStep(sh.buf, dst) // want:lockedcall "decodeStep"
}

// The claim-fill-publish shape: every branch releases the lock before
// the decode, so the fall-through decode is lock-free and must not be
// flagged.
func (r *Reader) goodRead(k int, dst []float64) error {
	sh := &r.shards[0]
	rec := make([]byte, 8)
	sh.mu.Lock()
	if sh.chunk == k {
		copy(rec, sh.buf)
		sh.mu.Unlock()
	} else {
		sh.mu.Unlock()
		raw, err := r.readChunk(k)
		if err != nil {
			return err
		}
		sh.mu.Lock()
		sh.buf, sh.chunk = raw, k
		sh.mu.Unlock()
	}
	return decodeStep(rec, dst)
}

// Series mirrors the real batched range cursor enough for the analyzer
// to see a ReadPackedRange call by name.
type Series struct {
	r *Reader
}

func (s *Series) ReadPackedRange(t0, t1 int, fn func(t int, packed []float64) error) error {
	return nil
}

// A batched range walk under the shard lock holds the lock for the
// whole multi-chunk decode — the worst possible critical section.
func (r *Reader) badRange(s *Series, dst []float64) error {
	sh := &r.shards[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return s.ReadPackedRange(0, 8, func(t int, packed []float64) error { // want:lockedcall "ReadPackedRange"
		copy(dst, packed)
		return nil
	})
}

// The range walk after the bookkeeping unlock is the intended shape:
// the cursor does its own per-chunk shard locking internally.
func (r *Reader) goodRange(s *Series, dst []float64) error {
	sh := &r.shards[0]
	sh.mu.Lock()
	sh.chunk = -1
	sh.mu.Unlock()
	return s.ReadPackedRange(0, 8, func(t int, packed []float64) error {
		copy(dst, packed)
		return nil
	})
}
