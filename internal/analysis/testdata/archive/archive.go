// Package archive is golden-test input for the lockedcall analyzer's
// chunk-decode detection, mirroring the real Reader's shard shape.
package archive

import "sync"

type shard struct {
	mu    sync.Mutex
	chunk int
	buf   []byte
}

// Reader mirrors the real sharded chunk reader.
type Reader struct {
	shards []shard
}

func (r *Reader) readChunk(k int) ([]byte, error) {
	return make([]byte, 8), nil
}

func decodeStep(rec []byte, dst []float64) error {
	return nil
}

// Decoding while the shard lock is held blocks every reader of the
// shard for the duration.
func (r *Reader) badRead(dst []float64) error {
	sh := &r.shards[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return decodeStep(sh.buf, dst) // want:lockedcall "decodeStep"
}

// The claim-fill-publish shape: every branch releases the lock before
// the decode, so the fall-through decode is lock-free and must not be
// flagged.
func (r *Reader) goodRead(k int, dst []float64) error {
	sh := &r.shards[0]
	rec := make([]byte, 8)
	sh.mu.Lock()
	if sh.chunk == k {
		copy(rec, sh.buf)
		sh.mu.Unlock()
	} else {
		sh.mu.Unlock()
		raw, err := r.readChunk(k)
		if err != nil {
			return err
		}
		sh.mu.Lock()
		sh.buf, sh.chunk = raw, k
		sh.mu.Unlock()
	}
	return decodeStep(rec, dst)
}
