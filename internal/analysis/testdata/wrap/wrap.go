// Package wrap is golden-test input for the errwrap analyzer.
package wrap

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base")

// %v on an error operand severs the chain.
func bad(name string) error {
	return fmt.Errorf("open %s: %v", name, errBase) // want:errwrap "without %w"
}

// %w keeps errors.Is/As working.
func good(name string) error {
	return fmt.Errorf("open %s: %w", name, errBase)
}

// No error operand, nothing to wrap.
func plain(name string) error {
	return fmt.Errorf("open %s failed", name)
}

// Two error operands but only one %w still loses a chain.
func mixed(e1, e2 error) error {
	return fmt.Errorf("join: %v; %w", e1, e2) // want:errwrap "without %w"
}

// Wrapping both is fine (multi-%w is valid since Go 1.20).
func both(e1, e2 error) error {
	return fmt.Errorf("join: %w; %w", e1, e2)
}
