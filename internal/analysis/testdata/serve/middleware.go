// middleware.go is the one file in the serving tier where ctxflow
// permits trace.New: the middleware parses the inbound traceparent,
// makes the sampling decision, and mints exactly one root span per
// request. This file is the golden-test negative control for that rule.
package serve

import (
	"net/http"

	"vetdata/trace"
)

// instrument is the sanctioned root-span site: one trace.New per
// request, in middleware.go, no diagnostic.
func (h *handler) instrument(w http.ResponseWriter, r *http.Request) {
	_, sp := trace.New(r.Method, trace.Options{Sampled: true})
	h.serveWith(r.Context(), w)
	sp.End()
}
