// Package serve is golden-test input for the ctxflow and lockedcall
// analyzers: its package name puts it inside both scopes.
package serve

import (
	"context"
	"net/http"
	"sync"

	"vetdata/obs"
	"vetdata/sht"
	"vetdata/trace"
)

type handler struct {
	mu      sync.Mutex
	plan    *sht.Plan
	data    []float64
	hits    *obs.Counter
	latency *obs.Histogram
	sink    obs.Sink
	span    *trace.Span
	traces  *trace.Store
}

// A detached context escapes the request's timeout/shedding layer.
func (h *handler) bad(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want:ctxflow "context.Background in the serving tier"
	h.serveWith(ctx, w)
}

// TODO contexts are just as detached.
func (h *handler) stub(w http.ResponseWriter, r *http.Request) {
	h.serveWith(context.TODO(), w) // want:ctxflow "context.TODO in the serving tier"
}

// Deriving from the request is the sanctioned form.
func (h *handler) good(w http.ResponseWriter, r *http.Request) {
	h.serveWith(r.Context(), w)
}

func (h *handler) serveWith(ctx context.Context, w http.ResponseWriter) {
	_ = ctx
	w.Write(nil)
}

// Synthesis under the shard lock serializes every other request.
func (h *handler) badSynthesize() {
	h.mu.Lock()
	h.plan.Synthesize(h.data) // want:lockedcall "while holding h.mu"
	h.mu.Unlock()
}

// A response write under the lock couples client I/O to the cache.
func (h *handler) badWrite(w http.ResponseWriter) {
	h.mu.Lock()
	defer h.mu.Unlock()
	w.Write(nil) // want:lockedcall "while holding h.mu"
}

// The single-flight shape: copy under the lock, work outside it.
func (h *handler) goodFlight() {
	h.mu.Lock()
	data := h.data
	h.mu.Unlock()
	h.plan.Synthesize(data)
}

// Metric observation under the shard lock couples every request on the
// shard to the recording path's latency.
func (h *handler) badCountUnderLock() {
	h.mu.Lock()
	h.hits.Inc() // want:lockedcall "metric observation"
	h.mu.Unlock()
}

// Histogram recording under a deferred unlock is held to function end.
func (h *handler) badObserveUnderLock(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.latency.Observe(v) // want:lockedcall "metric observation"
}

// Reporting through the pluggable sink interface is recording too.
func (h *handler) badSinkUnderLock() {
	h.mu.Lock()
	h.sink.Add("hits", 1) // want:lockedcall "metric observation"
	h.mu.Unlock()
}

func (h *handler) logRequest() {}

// Request logging serializes on the log mutex; not under a shard lock.
func (h *handler) badLogUnderLock() {
	h.mu.Lock()
	h.logRequest() // want:lockedcall "request logging"
	h.mu.Unlock()
}

// Counting after the unlock is the sanctioned shape.
func (h *handler) goodCountAfterUnlock() {
	h.mu.Lock()
	data := h.data
	h.mu.Unlock()
	h.hits.Inc()
	h.latency.Observe(float64(len(data)))
	h.logRequest()
}

// Finalizing a span under the shard lock puts the tracer's clock stamp
// and child-list append inside the critical section.
func (h *handler) badSpanEndUnderLock() {
	h.mu.Lock()
	h.span.End() // want:lockedcall "trace operation"
	h.mu.Unlock()
}

// Publishing to the trace store takes the stripe lock while the shard
// lock is held — lock nesting the invariant exists to prevent.
func (h *handler) badStoreAddUnderLock(tr *trace.Trace) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.traces.Add(tr) // want:lockedcall "trace operation"
}

func beginStage() {}

// The stage-instrumentation entry points are trace operations by name.
func (h *handler) badBeginStageUnderLock() {
	h.mu.Lock()
	beginStage() // want:lockedcall "trace operation"
	h.mu.Unlock()
}

// Tracing after the unlock is the sanctioned shape.
func (h *handler) goodTraceAfterUnlock(tr *trace.Trace) {
	h.mu.Lock()
	data := h.data
	h.mu.Unlock()
	h.span.SetAttr("len", int64(len(data)))
	h.span.End()
	h.traces.Add(tr)
	beginStage()
}

// A root span minted outside the middleware detaches from the request's
// trace; child spans must come from the request context.
func (h *handler) badRootSpan() {
	_, sp := trace.New("detached", trace.Options{}) // want:ctxflow "trace.New outside middleware.go"
	sp.End()
}
