// Package serve is golden-test input for the ctxflow and lockedcall
// analyzers: its package name puts it inside both scopes.
package serve

import (
	"context"
	"net/http"
	"sync"

	"vetdata/sht"
)

type handler struct {
	mu   sync.Mutex
	plan *sht.Plan
	data []float64
}

// A detached context escapes the request's timeout/shedding layer.
func (h *handler) bad(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want:ctxflow "context.Background in the serving tier"
	h.serveWith(ctx, w)
}

// TODO contexts are just as detached.
func (h *handler) stub(w http.ResponseWriter, r *http.Request) {
	h.serveWith(context.TODO(), w) // want:ctxflow "context.TODO in the serving tier"
}

// Deriving from the request is the sanctioned form.
func (h *handler) good(w http.ResponseWriter, r *http.Request) {
	h.serveWith(r.Context(), w)
}

func (h *handler) serveWith(ctx context.Context, w http.ResponseWriter) {
	_ = ctx
	w.Write(nil)
}

// Synthesis under the shard lock serializes every other request.
func (h *handler) badSynthesize() {
	h.mu.Lock()
	h.plan.Synthesize(h.data) // want:lockedcall "while holding h.mu"
	h.mu.Unlock()
}

// A response write under the lock couples client I/O to the cache.
func (h *handler) badWrite(w http.ResponseWriter) {
	h.mu.Lock()
	defer h.mu.Unlock()
	w.Write(nil) // want:lockedcall "while holding h.mu"
}

// The single-flight shape: copy under the lock, work outside it.
func (h *handler) goodFlight() {
	h.mu.Lock()
	data := h.data
	h.mu.Unlock()
	h.plan.Synthesize(data)
}
