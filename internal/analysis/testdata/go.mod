module vetdata

go 1.22
