// Package emulator is golden-test input for the determinism analyzer:
// its package name puts it inside the deterministic scope, and each
// function pins one positive or negative case via want annotations.
package emulator

import (
	"math/rand"
	"sort"
	"time"
)

func work() {}

// Global math/rand draws from shared process state.
func jitter() float64 {
	return rand.Float64() // want:determinism "global math/rand.Float64"
}

// An explicitly seeded source is the sanctioned form.
func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// A wall-clock read that does not feed elapsed-time measurement.
func stamp() int64 {
	return time.Now().UnixNano() // want:determinism "time.Now outside elapsed-time measurement"
}

// The measured pairing: time.Now licensed by a time.Since on the same
// variable.
func measured() time.Duration {
	start := time.Now()
	work()
	return time.Since(start)
}

// Scalar accumulation in map order differs run to run.
func total(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want:determinism "accumulates into sum"
	}
	return sum
}

// Per-key writes are order-independent.
func scale(m, out map[string]float64) {
	for k, v := range m {
		out[k] += v * 2
	}
}

// Appending values in map order is nondeterministic output.
func values(m map[string]float64) []float64 {
	var vs []float64
	for _, v := range m {
		vs = append(vs, v) // want:determinism "appends to vs"
	}
	return vs
}

// The canonical fix — collect the keys, sort, iterate — must not be
// flagged.
func sorted(m map[string]float64) []float64 {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	out := make([]float64, 0, len(ks))
	for _, k := range ks {
		out = append(out, m[k])
	}
	return out
}
