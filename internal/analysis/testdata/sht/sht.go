// Package sht mirrors the shape of the real spherical-harmonic package
// so lockedcall's synthesis detection (keyed on the package path
// suffix) has something to resolve against.
package sht

// Plan stands in for the real transform plan.
type Plan struct{ L int }

// Synthesize stands in for the heavy spectral-to-grid transform.
func (p *Plan) Synthesize(data []float64) {}
