// Package trace is a golden-test stub of the tracing core: just enough
// surface for the lockedcall and ctxflow analyzers to resolve receiver
// types and call sites into a "trace"-suffixed package path.
package trace

// Options is the stub of the root-span options.
type Options struct{ Sampled bool }

// Trace is a stub trace handle.
type Trace struct{ sampled bool }

// Span is a stub span.
type Span struct{ name string }

// New mints a stub root span; only middleware.go may call it.
func New(name string, opts Options) (*Trace, *Span) {
	return &Trace{sampled: opts.Sampled}, &Span{name: name}
}

// End finalizes the span.
func (s *Span) End() {}

// SetAttr attaches an attribute.
func (s *Span) SetAttr(key string, v int64) {}

// Store is a stub trace ring store.
type Store struct{ n int }

// Add publishes a finished trace.
func (st *Store) Add(tr *Trace) { st.n++ }
