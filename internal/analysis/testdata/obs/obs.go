// Package obs is a golden-test stub of the metrics core: just enough
// surface for the lockedcall analyzer to resolve receiver types into an
// "obs"-suffixed package path.
package obs

// Counter is a stub monotone counter.
type Counter struct{ n int64 }

// Inc increments the counter.
func (c *Counter) Inc() { c.n++ }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.n += d }

// Histogram is a stub latency histogram.
type Histogram struct{ sum float64 }

// Observe records one value.
func (h *Histogram) Observe(v float64) { h.sum += v }

// Sink is the stub of the pluggable instrumentation interface.
type Sink interface {
	Add(metric string, delta int64)
}
