// Package pooldata is golden-test input for the pooldiscipline
// analyzer.
package pooldata

import "sync"

var bufs = sync.Pool{New: func() any { b := make([]byte, 1024); return &b }}

// An early return between Get and Put leaks the buffer.
func leaky(fail bool) int {
	b := bufs.Get().(*[]byte) // want:pooldiscipline "not returned to the pool on every path"
	if fail {
		return 0
	}
	bufs.Put(b)
	return len(*b)
}

// A discarded Get can never be Put back.
func discard() {
	bufs.Get() // want:pooldiscipline "result discarded"
}

// defer Put covers every return path.
func deferred() int {
	b := bufs.Get().(*[]byte)
	defer bufs.Put(b)
	return len(*b)
}

// Explicit Put on each path also passes.
func allPaths(fail bool) int {
	b := bufs.Get().(*[]byte)
	if fail {
		bufs.Put(b)
		return 0
	}
	n := len(*b)
	bufs.Put(b)
	return n
}

// A value that escapes (returned to the caller) leaves the pool's
// custody deliberately; ownership transfer is not a leak.
func escapes() *[]byte {
	b := bufs.Get().(*[]byte)
	return b
}

// Paths that end in panic are exempt — the process is going down.
func panics(fail bool) {
	b := bufs.Get().(*[]byte)
	if fail {
		panic("corrupt state")
	}
	bufs.Put(b)
}
