// Package pooldata is golden-test input for the pooldiscipline
// analyzer.
package pooldata

import "sync"

var bufs = sync.Pool{New: func() any { b := make([]byte, 1024); return &b }}

// An early return between Get and Put leaks the buffer.
func leaky(fail bool) int {
	b := bufs.Get().(*[]byte) // want:pooldiscipline "not returned to the pool on every path"
	if fail {
		return 0
	}
	bufs.Put(b)
	return len(*b)
}

// A discarded Get can never be Put back.
func discard() {
	bufs.Get() // want:pooldiscipline "result discarded"
}

// defer Put covers every return path.
func deferred() int {
	b := bufs.Get().(*[]byte)
	defer bufs.Put(b)
	return len(*b)
}

// Explicit Put on each path also passes.
func allPaths(fail bool) int {
	b := bufs.Get().(*[]byte)
	if fail {
		bufs.Put(b)
		return 0
	}
	n := len(*b)
	bufs.Put(b)
	return n
}

// A value that escapes (returned to the caller) leaves the pool's
// custody deliberately; ownership transfer is not a leak.
func escapes() *[]byte {
	b := bufs.Get().(*[]byte)
	return b
}

// Paths that end in panic are exempt — the process is going down.
func panics(fail bool) {
	b := bufs.Get().(*[]byte)
	if fail {
		panic("corrupt state")
	}
	bufs.Put(b)
}

// The serving gzip idiom: a pooled compressor whose Put rides in a
// returned closure. The value escapes into the closure, an ownership
// transfer the analyzer must accept — the caller's done() is the Put.
type compressor struct{}

func (c *compressor) Reset(dst any) {}
func (c *compressor) Close() error  { return nil }

var compressors = sync.Pool{New: func() any { return new(compressor) }}

func pooledCompressor(dst any) (c *compressor, done func()) {
	zw := compressors.Get().(*compressor)
	zw.Reset(dst)
	return zw, func() {
		zw.Close()
		compressors.Put(zw)
	}
}

// But a compressor taken and abandoned on the error path is a leak the
// analyzer must still catch, closure idiom or not.
func compressorLeak(fail bool) *compressor {
	zw := compressors.Get().(*compressor) // want:pooldiscipline "not returned to the pool on every path"
	if fail {
		return nil
	}
	compressors.Put(zw)
	return nil
}

// The float32 scratch idiom from the binary field writer: Get a pooled
// chunk, deref through the pointer, deferred Put covers the early
// return inside the write loop.
var f32Chunks = sync.Pool{New: func() any { s := make([]float32, 256); return &s }}

func writeChunks(vals []float32, sink func([]float32) bool) {
	bp := f32Chunks.Get().(*[]float32)
	defer f32Chunks.Put(bp)
	buf := *bp
	for off := 0; off < len(vals); off += len(buf) {
		n := min(len(buf), len(vals)-off)
		copy(buf, vals[off:off+n])
		if !sink(buf[:n]) {
			return // early return: the deferred Put still runs
		}
	}
}

// A scratch user that Puts only on the happy path leaks on the early
// return.
func scratchLeak(vals []float32, sink func([]float32) bool) {
	bp := f32Chunks.Get().(*[]float32) // want:pooldiscipline "not returned to the pool on every path"
	if !sink(*bp) {
		return
	}
	_ = vals
	f32Chunks.Put(bp)
}

// The per-worker scratch-arena idiom from the parallel synthesis
// kernel: take one pooled scratch per worker up front, hand the slice
// to the workers, and sweep every entry back with one deferred release.
// Each Get is bound to an ident and immediately stored into the slice —
// an ownership transfer into the arena, which the deferred sweep Puts.
type workerScratch struct{ flat []float64 }

var workerScratches = sync.Pool{New: func() any { return new(workerScratch) }}

func takeScratches(workers int) []*workerScratch {
	out := make([]*workerScratch, workers)
	for i := range out {
		sc := workerScratches.Get().(*workerScratch)
		out[i] = sc
	}
	return out
}

func releaseScratches(scratch []*workerScratch) {
	for _, sc := range scratch {
		workerScratches.Put(sc)
	}
}

func parallelWork(workers int, run func(g int, sc *workerScratch)) {
	scratch := takeScratches(workers)
	defer releaseScratches(scratch)
	for g := 0; g < workers; g++ {
		run(g, scratch[g])
	}
}

// The same arena shape with the release forgotten on the error path is
// still a leak: the Get is bound and used locally but one branch
// abandons it without a Put or an escape.
func arenaLeak(fail bool) int {
	sc := workerScratches.Get().(*workerScratch) // want:pooldiscipline "not returned to the pool on every path"
	if fail {
		return 0
	}
	n := len(sc.flat)
	workerScratches.Put(sc)
	return n
}
