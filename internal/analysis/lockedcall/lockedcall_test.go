package lockedcall_test

import (
	"testing"

	"exaclim/internal/analysis/vettest"
)

// TestLockedcall drives the built vettool over the shared testdata module
// and diffs its JSON diagnostics against the want annotations there.
func TestLockedcallGolden(t *testing.T) {
	vettest.Run(t, "lockedcall")
}
