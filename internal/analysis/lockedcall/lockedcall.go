// Package lockedcall defines an analyzer guarding the single-flight
// invariant of the serving and archive tiers: a cache-shard mutex (or
// any sync.Mutex/RWMutex in those packages) protects map and list
// manipulation only — the heavy work it coordinates must happen outside
// the critical section. Concretely, while a mutex is held it forbids:
//
//   - spherical-harmonic synthesis or analysis (sht.Plan methods),
//     which is O(L^2 * pixels) per field;
//   - chunk I/O and coefficient decode (readChunk / decodeStep and the
//     Read* entry points built on them);
//   - writing to an http.ResponseWriter (response I/O stalls on slow
//     clients, so a locked write lets one client block a shard);
//   - metric observation and request logging (obs-package calls, sink
//     observe, logRequest, noteCacheOutcome): recording takes label-map
//     locks and log writes serialize on the log mutex, so doing either
//     under a shard lock couples every request on that shard to the
//     observability path's latency;
//   - trace operations (trace-package calls, beginStage, recordStage):
//     span finalization stamps clocks and appends to the parent's child
//     list, and store publication takes the stripe lock, so tracing
//     under a shard lock adds the tracer's latency to the critical
//     section exactly where contention hurts most.
//
// The fieldCache's getOrLoad documents the intended shape: register a
// flight under the lock, run the load with the lock released, publish
// under the lock again — and count or annotate it after the unlock.
package lockedcall

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"exaclim/internal/analysis/internal/scope"
)

// DefaultPackages scopes the invariant to the lock-disciplined tiers.
const DefaultPackages = "serve,archive"

var pkgs string

var Analyzer = &analysis.Analyzer{
	Name: "lockedcall",
	Doc: "forbid SHT synthesis, chunk decode, ResponseWriter writes, metric observation, " +
		"request logging, and trace operations while holding a mutex (the single-flight " +
		"invariant: heavy work runs outside the lock)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func init() {
	Analyzer.Flags.StringVar(&pkgs, "lockpkgs", DefaultPackages,
		"comma-separated package basenames the lock-discipline invariant binds")
}

// heavyNames lists function/method names that identify chunk I/O and
// decode work regardless of receiver: the archive frame-parsing layer
// and the reader entry points built on it.
var heavyNames = map[string]bool{
	"readChunk": true, "decodeStep": true, "decodeChunk": true,
	"decodeHeader": true, "decodeIndex": true,
	"ReadPacked": true, "ReadPackedRange": true, "ReadField": true, "ReadFieldInto": true, "EachField": true,
}

// shtHeavy lists the sht transform entry points.
var shtHeavy = map[string]bool{
	"Synthesize": true, "SynthesizeInto": true, "Analyze": true, "AnalyzeInto": true,
}

// obsNames lists the observability helpers forbidden under a lock
// regardless of receiver: the archive reader's sink reporter and the
// serve tier's request-trace writers.
var obsNames = map[string]bool{
	"observe": true, "logRequest": true, "noteCacheOutcome": true,
}

// traceNames lists the serve tier's stage-instrumentation entry points,
// forbidden under a lock by name: they stamp clocks and (when sampled)
// touch the span tree.
var traceNames = map[string]bool{
	"beginStage": true, "recordStage": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !scope.Match(pass, pkgs) {
		return nil, nil
	}
	rw := responseWriterIface(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || scope.InTestFile(pass, fd.Pos()) {
			return
		}
		walkLocked(pass, fd.Body.List, map[string]token.Pos{}, rw)
	})
	return nil, nil
}

// responseWriterIface finds net/http.ResponseWriter among the package's
// imports; nil when the package does not import net/http.
func responseWriterIface(pass *analysis.Pass) *types.Interface {
	for _, imp := range pass.Pkg.Imports() {
		if imp.Path() != "net/http" {
			continue
		}
		if obj, ok := imp.Scope().Lookup("ResponseWriter").(*types.TypeName); ok {
			if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
				return iface
			}
		}
	}
	return nil
}

// walkLocked scans a statement list tracking which mutexes are held. It
// returns the held set at the list's fall-through end and whether the
// list always terminates (returns, branches, or panics) instead of
// falling through. Branch exits are joined by union: a mutex counts as
// held after an if/switch when any non-terminating path leaves it held
// — sound (no missed heavy calls) at the price of flagging paths the
// runtime may never pair; an unlock on every branch clears the state.
func walkLocked(pass *analysis.Pass, stmts []ast.Stmt, held map[string]token.Pos, rw *types.Interface) (map[string]token.Pos, bool) {
	for _, st := range stmts {
		switch s := st.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if mu, kind := mutexOp(pass, call); mu != "" {
					if kind == opLock {
						held[mu] = call.Pos()
					} else {
						delete(held, mu)
					}
					continue
				}
			}
		case *ast.DeferStmt:
			if mu, kind := mutexOp(pass, s.Call); mu != "" && kind == opUnlock {
				// The lock stays held to the end of the function: keep
				// scanning the remainder as locked. The defer itself is
				// exempt.
				continue
			}
		}
		if len(held) > 0 {
			reportHeavy(pass, st, held, rw)
		}
		switch s := st.(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			return held, true
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && neverReturns(call) {
				return held, true
			}
		case *ast.BlockStmt:
			out, term := walkLocked(pass, s.List, clone(held), rw)
			if term {
				return held, true
			}
			held = out
		case *ast.IfStmt:
			thenOut, thenTerm := walkLocked(pass, s.Body.List, clone(held), rw)
			elseOut, elseTerm := clone(held), false
			if s.Else != nil {
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					elseOut, elseTerm = walkLocked(pass, e.List, clone(held), rw)
				case *ast.IfStmt:
					elseOut, elseTerm = walkLocked(pass, []ast.Stmt{e}, clone(held), rw)
				}
			}
			switch {
			case thenTerm && elseTerm:
				return held, true
			case thenTerm:
				held = elseOut
			case elseTerm:
				held = thenOut
			default:
				held = union(thenOut, elseOut)
			}
		case *ast.ForStmt:
			out, _ := walkLocked(pass, s.Body.List, clone(held), rw)
			held = union(held, out) // body may run zero times
		case *ast.RangeStmt:
			out, _ := walkLocked(pass, s.Body.List, clone(held), rw)
			held = union(held, out)
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			var body *ast.BlockStmt
			switch s := st.(type) {
			case *ast.SwitchStmt:
				body = s.Body
			case *ast.TypeSwitchStmt:
				body = s.Body
			case *ast.SelectStmt:
				body = s.Body
			}
			out := clone(held) // no-default fall-through keeps the state
			for _, c := range body.List {
				var list []ast.Stmt
				switch cc := c.(type) {
				case *ast.CaseClause:
					list = cc.Body
				case *ast.CommClause:
					list = cc.Body
				}
				caseOut, caseTerm := walkLocked(pass, list, clone(held), rw)
				if !caseTerm {
					out = union(out, caseOut)
				}
			}
			held = out
		}
	}
	return held, false
}

func clone(m map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func union(a, b map[string]token.Pos) map[string]token.Pos {
	out := clone(a)
	for k, v := range b {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

// neverReturns matches panic and conventional fatal helpers ending a
// path.
func neverReturns(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic" || fun.Name == "fatal"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Exit", "Fatal", "Fatalf", "Fatalln", "Goexit", "Panic", "Panicf", "Panicln":
			return true
		}
	}
	return false
}

// reportHeavy flags heavy calls directly inside st (function literals
// are skipped: they run later, typically after the unlock).
func reportHeavy(pass *analysis.Pass, st ast.Stmt, held map[string]token.Pos, rw *types.Interface) {
	// Nested statement lists are scanned by walkLocked's recursion; here
	// only the statement's own expressions matter (conditions, calls).
	switch st.(type) {
	case *ast.BlockStmt:
		return
	}
	ast.Inspect(st, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.BlockStmt:
			return false
		case *ast.CallExpr:
			if name, why := heavyCall(pass, n, rw); name != "" {
				mu := anyKey(held)
				pass.Reportf(n.Pos(),
					"%s (%s) while holding %s; move heavy work outside the lock (single-flight invariant)",
					name, why, mu)
			}
		}
		return true
	})
}

func anyKey(m map[string]token.Pos) string {
	best := ""
	for k := range m {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

// heavyCall classifies call; it returns the printable callee and the
// reason, or "" when the call is fine.
func heavyCall(pass *analysis.Pass, call *ast.CallExpr, rw *types.Interface) (name, why string) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		sel := fun.Sel.Name
		// Response I/O: a method on an http.ResponseWriter.
		if rw != nil {
			if t := pass.TypesInfo.TypeOf(fun.X); t != nil && types.Implements(t, rw) {
				if sel == "Write" || sel == "WriteHeader" {
					return exprString(pass, fun), "response write"
				}
			}
		}
		// SHT transforms: methods of the sht package's types, or its
		// package-level functions.
		if shtHeavy[sel] {
			if fromPackage(pass, fun, "sht") {
				return exprString(pass, fun), "SHT transform"
			}
		}
		// Metric recording: any call into the obs package (Counter.Inc,
		// Histogram.Observe, Sink.Add, registration, exposition).
		if fromPackage(pass, fun, "obs") {
			return exprString(pass, fun), "metric observation"
		}
		// Tracing: any call into the trace package (span End/SetAttr,
		// store Add, trace.New) runs the tracer inside the critical
		// section.
		if fromPackage(pass, fun, "trace") {
			return exprString(pass, fun), "trace operation"
		}
		if obsNames[sel] {
			return exprString(pass, fun), "metric observation or request logging"
		}
		if traceNames[sel] {
			return exprString(pass, fun), "trace operation"
		}
		if heavyNames[sel] {
			return exprString(pass, fun), "chunk I/O or decode"
		}
	case *ast.Ident:
		if obsNames[fun.Name] {
			return fun.Name, "metric observation or request logging"
		}
		if traceNames[fun.Name] {
			return fun.Name, "trace operation"
		}
		if heavyNames[fun.Name] {
			return fun.Name, "chunk I/O or decode"
		}
	}
	// Any call handing a ResponseWriter onward (http.Error, writeJSON)
	// does response I/O on its behalf.
	if rw != nil {
		for _, arg := range call.Args {
			if t := pass.TypesInfo.TypeOf(arg); t != nil && types.Implements(t, rw) {
				return exprString(pass, call.Fun), "response write via argument"
			}
		}
	}
	return "", ""
}

// fromPackage reports whether the selector resolves into a package
// whose import path is base or ends in "/"+base — a method on one of
// its types (possibly through an interface it declares) or one of its
// package-level functions.
func fromPackage(pass *analysis.Pass, sel *ast.SelectorExpr, base string) bool {
	match := func(p string) bool {
		return p == base || len(p) > len(base)+1 && p[len(p)-len(base)-1:] == "/"+base
	}
	if p := scope.ImportedPkg(pass, sel.X); p != "" {
		return match(p)
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	for {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return match(named.Obj().Pkg().Path())
}

const (
	opLock = iota
	opUnlock
)

// mutexOp classifies call as a Lock/RLock or Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex, returning the receiver's printed form as
// the lock identity.
func mutexOp(pass *analysis.Pass, call *ast.CallExpr) (string, int) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	var kind int
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = opLock
	case "Unlock", "RUnlock":
		kind = opUnlock
	default:
		return "", 0
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	for {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", 0
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" ||
		(obj.Name() != "Mutex" && obj.Name() != "RWMutex") {
		return "", 0
	}
	return exprString(pass, sel.X), kind
}

// exprString renders a (small) expression for diagnostics.
func exprString(pass *analysis.Pass, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, pass.Fset, e); err != nil {
		return "?"
	}
	return buf.String()
}
