// Package vettest is the golden-test harness for cmd/exaclimvet. The
// module cache holds no analysistest, so instead of simulating the
// driver it exercises the real one: it builds the vettool binary and
// runs `go vet -vettool -json` over the testdata module, then diffs the
// JSON diagnostics against `// want:<analyzer> "regex"` annotations in
// the testdata sources. That makes every run an end-to-end check of the
// unitchecker packaging (flag registration, per-package facts, JSON
// output) as well as of the analyzer logic itself.
//
// Annotation form, one per expected diagnostic on that line:
//
//	rand.Float64() // want:determinism "global math/rand.Float64"
//
// The quoted part is a regular expression matched against the
// diagnostic message. Several annotations may share a line. A test
// fails on any unmatched diagnostic and on any unsatisfied annotation.
package vettest

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	toolPath  string
	buildErr  error
)

// Run vets the testdata module with only the named analyzer enabled and
// compares its diagnostics against the module's want annotations.
func Run(t *testing.T, analyzer string) {
	t.Helper()
	root := repoRoot(t)
	bin := buildTool(t, root)
	td := filepath.Join(root, "internal", "analysis", "testdata")

	cmd := exec.Command("go", "vet", "-vettool="+bin, "-json", "-"+analyzer, "./...")
	cmd.Dir = td
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go vet -%s: %v\n%s", analyzer, err, out)
	}
	got := parseDiagnostics(t, string(out), analyzer, td)
	wants := parseWants(t, td, analyzer)

	for _, d := range got {
		k := wantKey{d.file, d.line}
		matched := false
		for i, w := range wants[k] {
			if w.MatchString(d.message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected %s diagnostic: %s", d.file, d.line, analyzer, d.message)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			t.Errorf("%s:%d: no %s diagnostic matched want %q", k.file, k.line, analyzer, w)
		}
	}
}

// repoRoot resolves the enclosing module's directory, where the vettool
// builds from.
func repoRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		t.Fatal("not inside a module")
	}
	return filepath.Dir(gomod)
}

// buildTool compiles cmd/exaclimvet once per test binary.
func buildTool(t *testing.T, root string) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "exaclimvet")
		if err != nil {
			buildErr = err
			return
		}
		toolPath = filepath.Join(dir, "exaclimvet")
		cmd := exec.Command("go", "build", "-o", toolPath, "exaclim/cmd/exaclimvet")
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("building exaclimvet: %w\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return toolPath
}

type diagnostic struct {
	file    string // relative to the testdata module root
	line    int
	message string
}

// parseDiagnostics decodes `go vet -json` output: `# pkg` comment lines
// interleaved with one JSON object per package, shaped
// {"pkg": {"analyzer": [{"posn": "file:line:col", "message": ...}]}}.
func parseDiagnostics(t *testing.T, out, analyzer, td string) []diagnostic {
	t.Helper()
	var jsonText strings.Builder
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		jsonText.WriteString(line)
		jsonText.WriteByte('\n')
	}
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	var diags []diagnostic
	dec := json.NewDecoder(strings.NewReader(jsonText.String()))
	for dec.More() {
		var pkgs map[string]map[string][]jsonDiag
		if err := dec.Decode(&pkgs); err != nil {
			t.Fatalf("decoding vet JSON: %v\noutput:\n%s", err, out)
		}
		for _, byAnalyzer := range pkgs {
			for name, ds := range byAnalyzer {
				if name != analyzer {
					t.Fatalf("diagnostic from analyzer %q leaked into a -%s run", name, analyzer)
				}
				for _, d := range ds {
					file, line := splitPosn(t, d.Posn)
					if rel, err := filepath.Rel(td, file); err == nil {
						file = rel
					}
					diags = append(diags, diagnostic{file: file, line: line, message: d.Message})
				}
			}
		}
	}
	return diags
}

// splitPosn breaks "path:line:col" (path may itself contain colons on
// some systems, so split from the right).
func splitPosn(t *testing.T, posn string) (string, int) {
	t.Helper()
	parts := strings.Split(posn, ":")
	if len(parts) < 3 {
		t.Fatalf("malformed position %q", posn)
	}
	line, err := strconv.Atoi(parts[len(parts)-2])
	if err != nil {
		t.Fatalf("malformed position %q: %v", posn, err)
	}
	return strings.Join(parts[:len(parts)-2], ":"), line
}

type wantKey struct {
	file string
	line int
}

var wantRE = regexp.MustCompile(`//\s*want:([a-zA-Z0-9_]+)((?:\s+"(?:[^"\\]|\\.)*")+)`)
var wantArgRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// parseWants collects the testdata module's annotations for one
// analyzer, keyed by (relative file, line).
func parseWants(t *testing.T, td, analyzer string) map[wantKey][]*regexp.Regexp {
	t.Helper()
	wants := map[wantKey][]*regexp.Regexp{}
	err := filepath.WalkDir(td, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(td, path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				if m[1] != analyzer {
					continue
				}
				k := wantKey{file: rel, line: i + 1}
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[2], -1) {
					re, err := regexp.Compile(arg[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", rel, i+1, arg[1], err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scanning testdata: %v", err)
	}
	return wants
}
