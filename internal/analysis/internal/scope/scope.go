// Package scope holds the tiny helpers the exaclimvet analyzers share:
// deciding which packages an invariant applies to and which files are
// test files. Analyzers see one package at a time, so scoping is by
// package path; the defaults name this repository's packages, and each
// analyzer exposes a flag so the golden-test packages (and future
// sub-repos) can opt in under their own paths.
package scope

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Match reports whether the analyzed package falls under one of the
// comma-separated names: each entry matches the last path element of
// the package import path ("emulator" matches exaclim/internal/emulator
// and any golden-test package named emulator). The "_test" suffix of
// external test packages is ignored, so scoping decisions hold for a
// package and its tests alike.
func Match(pass *analysis.Pass, csv string) bool {
	p := strings.TrimSuffix(pass.Pkg.Path(), "_test")
	base := path.Base(p)
	for _, want := range strings.Split(csv, ",") {
		if want = strings.TrimSpace(want); want != "" && want == base {
			return true
		}
	}
	return false
}

// InTestFile reports whether pos lies in a _test.go file. Invariants
// about production determinism and lock discipline do not bind test
// code, which deliberately provokes edge cases.
func InTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// ImportedPkg resolves expr to the import path of the package it
// qualifies, when expr is the X of a selector like rand.Float64 or
// time.Now. It returns "" when expr is not a package qualifier.
func ImportedPkg(pass *analysis.Pass, expr ast.Expr) string {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// PkgCall reports whether call invokes pkgPath.name (a package-level
// function, matched through the type info so aliases and shadowing do
// not fool it).
func PkgCall(pass *analysis.Pass, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	return ImportedPkg(pass, sel.X) == pkgPath
}
