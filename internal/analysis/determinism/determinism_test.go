package determinism_test

import (
	"testing"

	"exaclim/internal/analysis/vettest"
)

// TestDeterminism drives the built vettool over the shared testdata module
// and diffs its JSON diagnostics against the want annotations there.
func TestDeterminismGolden(t *testing.T) {
	vettest.Run(t, "determinism")
}
