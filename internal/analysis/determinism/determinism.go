// Package determinism defines an analyzer enforcing the repository's
// bit-reproducibility invariant: an archived campaign must replay and
// retrain byte-identically (per-seed byte-identical EmulateEnsemble,
// bit-deterministic TrainFrom merges). Inside the deterministic
// packages it forbids the three ambient-nondeterminism entry points
// that have historically broken such guarantees:
//
//   - the global math/rand top-level functions, whose shared state
//     makes output depend on unrelated goroutines — randomness must
//     flow through an explicitly seeded *rand.Rand;
//   - time.Now outside elapsed-time measurement that lands in measured
//     stats fields (a time.Since / Time.Sub pairing) — wall-clock reads
//     must never influence emulated values;
//   - ranging over a map while accumulating into state that outlives
//     the loop — Go randomizes map iteration order, so reductions and
//     output built this way differ run to run; iterate sorted keys.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"exaclim/internal/analysis/internal/scope"
)

// DefaultPackages names the packages whose outputs must be
// bit-reproducible: everything between training input and emulated or
// replayed bytes.
const DefaultPackages = "emulator,varm,trend,sht,archive,source,forcing"

var pkgs string

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid ambient nondeterminism (global math/rand, stray time.Now, " +
		"map-order-dependent accumulation) in the deterministic packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func init() {
	Analyzer.Flags.StringVar(&pkgs, "detpkgs", DefaultPackages,
		"comma-separated package basenames the determinism invariant binds")
}

// globalRand lists the math/rand (and v2) top-level functions that draw
// from the package-global source. Constructors (New, NewSource, NewZipf)
// and pure helpers are fine.
var globalRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int64": true, "Int64N": true,
	"Int32": true, "Int32N": true, "IntN": true, "N": true,
	"Uint32": true, "Uint64": true, "Uint64N": true, "Uint32N": true,
	"UintN": true, "Uint": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !scope.Match(pass, pkgs) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Pass 1 over each function: collect the objects that flow into
	// elapsed-time measurement (time.Since(x), x.Sub(y)), which license
	// a time.Now assignment.
	measured := map[types.Object]bool{}
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if scope.PkgCall(pass, call, "time", "Since") && len(call.Args) == 1 {
			if id, ok := call.Args[0].(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil {
					measured[obj] = true
				}
			}
			return
		}
		// x.Sub(y) / y.Sub(x) on time.Time values.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sub" {
			if isTimeTime(pass.TypesInfo.TypeOf(sel.X)) {
				mark := func(e ast.Expr) {
					if id, ok := e.(*ast.Ident); ok {
						if obj := pass.TypesInfo.Uses[id]; obj != nil {
							measured[obj] = true
						}
					}
				}
				mark(sel.X)
				for _, a := range call.Args {
					mark(a)
				}
			}
		}
	})

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil), (*ast.RangeStmt)(nil)}, func(n ast.Node) {
		if scope.InTestFile(pass, n.Pos()) {
			return
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n, measured)
		case *ast.RangeStmt:
			checkMapRange(pass, n)
		}
	})
	return nil, nil
}

func isTimeTime(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Time" && obj.Pkg() != nil && obj.Pkg().Path() == "time"
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, measured map[types.Object]bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	switch scope.ImportedPkg(pass, sel.X) {
	case "math/rand", "math/rand/v2":
		if globalRand[sel.Sel.Name] {
			pass.Reportf(call.Pos(),
				"global math/rand.%s draws from shared process state; use an explicitly seeded *rand.Rand",
				sel.Sel.Name)
		}
	case "time":
		if sel.Sel.Name != "Now" {
			return
		}
		if timeNowMeasured(pass, call, measured) {
			return
		}
		pass.Reportf(call.Pos(),
			"time.Now outside elapsed-time measurement in a deterministic package; wall-clock reads must not influence output")
	}
}

// timeNowMeasured reports whether this time.Now call only feeds an
// elapsed-time measurement: it is the direct argument of time.Since, or
// its result is bound to a variable that later flows into time.Since or
// Time.Sub.
func timeNowMeasured(pass *analysis.Pass, call *ast.CallExpr, measured map[types.Object]bool) bool {
	path := enclosing(pass, call.Pos())
	for i := len(path) - 1; i >= 0; i-- {
		switch parent := path[i].(type) {
		case *ast.CallExpr:
			if parent != call && scope.PkgCall(pass, parent, "time", "Since") {
				return true
			}
			if sel, ok := parent.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sub" && parent != call {
				return true
			}
		case *ast.AssignStmt:
			for li, rhs := range parent.Rhs {
				if rhs != call || li >= len(parent.Lhs) {
					continue
				}
				if id, ok := parent.Lhs[li].(*ast.Ident); ok {
					if obj := pass.TypesInfo.Defs[id]; obj != nil && measured[obj] {
						return true
					}
					if obj := pass.TypesInfo.Uses[id]; obj != nil && measured[obj] {
						return true
					}
				}
			}
		case *ast.ValueSpec:
			for li, rhs := range parent.Values {
				if rhs != call || li >= len(parent.Names) {
					continue
				}
				if obj := pass.TypesInfo.Defs[parent.Names[li]]; obj != nil && measured[obj] {
					return true
				}
			}
		}
	}
	return false
}

// enclosing returns the AST path from the file root down to the node at
// pos (innermost last).
func enclosing(pass *analysis.Pass, pos token.Pos) []ast.Node {
	for _, f := range pass.Files {
		if f.Pos() <= pos && pos < f.End() {
			// Only nodes containing pos are pushed, so the live stack is
			// always the chain of enclosing nodes; keep the deepest state
			// seen, since leaving the subtree pops it again.
			var stack, best []ast.Node
			ast.Inspect(f, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				if n.Pos() <= pos && pos < n.End() {
					stack = append(stack, n)
					if len(stack) > len(best) {
						best = append(best[:0:0], stack...)
					}
					return true
				}
				return false
			})
			return best
		}
	}
	return nil
}

// checkMapRange flags `for k, v := range m` over a map whose body
// accumulates into state declared outside the loop: += and friends on
// an outer variable, or append to an outer slice. Writes keyed by the
// iteration variable (out[k] = ...) are order-independent and pass.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	if _, ok := pass.TypesInfo.TypeOf(rng.X).Underlying().(*types.Map); !ok {
		return
	}
	declaredOutside := func(e ast.Expr) (types.Object, bool) {
		id, ok := rootIdent(e)
		if !ok {
			return nil, false
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return nil, false
		}
		// Outside means the variable does not live inside the range
		// statement's extent.
		if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
			return nil, false
		}
		return obj, true
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // runs later; not this loop's accumulation
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN,
			token.REM_ASSIGN, token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN,
			token.SHL_ASSIGN, token.SHR_ASSIGN, token.AND_NOT_ASSIGN:
			for _, lhs := range as.Lhs {
				// Indexed writes like out[k] += v are per-key and safe.
				if _, isIndex := lhs.(*ast.IndexExpr); isIndex {
					continue
				}
				if obj, outside := declaredOutside(lhs); outside {
					pass.Reportf(as.Pos(),
						"map iteration accumulates into %s in nondeterministic key order; iterate sorted keys",
						obj.Name())
				}
			}
		case token.ASSIGN, token.DEFINE:
			// x = append(x, ...) where x is declared outside the loop.
			for i, rhs := range as.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || i >= len(as.Lhs) {
					continue
				}
				if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
					continue
				}
				if obj, outside := declaredOutside(as.Lhs[i]); outside {
					// The canonical fix collects the keys and sorts them
					// before use; don't flag the idiom itself.
					if keyOnlyAppend(pass, rng, call) && sortedAfter(pass, rng, obj) {
						continue
					}
					pass.Reportf(as.Pos(),
						"map iteration appends to %s in nondeterministic key order; iterate sorted keys",
						obj.Name())
				}
			}
		}
		return true
	})
}

// keyOnlyAppend reports whether the append's added operands are all the
// range statement's key variable — the shape of collecting a map's keys.
func keyOnlyAppend(pass *analysis.Pass, rng *ast.RangeStmt, call *ast.CallExpr) bool {
	keyID, ok := rng.Key.(*ast.Ident)
	if !ok {
		return false
	}
	keyObj := pass.TypesInfo.Defs[keyID]
	if keyObj == nil {
		keyObj = pass.TypesInfo.Uses[keyID]
	}
	if keyObj == nil || len(call.Args) < 2 {
		return false
	}
	for _, a := range call.Args[1:] {
		id, ok := a.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != keyObj {
			return false
		}
	}
	return true
}

// sortedAfter reports whether the enclosing function sorts obj (a call
// into sort or slices taking it as an argument) after the range loop,
// which restores a deterministic order before the keys are used.
func sortedAfter(pass *analysis.Pass, rng *ast.RangeStmt, obj types.Object) bool {
	var fn ast.Node
	for _, n := range enclosing(pass, rng.Pos()) {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			fn = n // innermost wins
		}
	}
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch scope.ImportedPkg(pass, sel.X) {
		case "sort", "slices":
		default:
			return true
		}
		for _, a := range call.Args {
			if id, ok := rootIdent(a); ok && pass.TypesInfo.Uses[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}

// rootIdent unwraps selectors and parens down to the base identifier:
// a.b.c -> a, (x) -> x.
func rootIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v, true
		case *ast.SelectorExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil, false
		}
	}
}
