// Package errwrap defines an analyzer enforcing error-chain integrity:
// every fmt.Errorf that formats an error operand must wrap it with %w.
// The serving stack classifies failures by unwrapping (errors.As picks
// *serve.QueryError out of whatever the archive layer returned, mapping
// caller mistakes to 400 and data-plane faults to 500); a %v or %s
// flattens the operand to text and silently breaks that classification
// one layer up.
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"exaclim/internal/analysis/internal/scope"
)

var Analyzer = &analysis.Analyzer{
	Name:     "errwrap",
	Doc:      "require %w for error operands of fmt.Errorf so chains survive errors.Is/As",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if !scope.PkgCall(pass, call, "fmt", "Errorf") || len(call.Args) < 2 {
			return
		}
		format, ok := constString(pass, call.Args[0])
		if !ok {
			return // dynamic format: nothing to prove
		}
		errOperands := 0
		for _, arg := range call.Args[1:] {
			t := pass.TypesInfo.TypeOf(arg)
			if t != nil && types.Implements(t, errIface) {
				errOperands++
			}
		}
		if errOperands == 0 {
			return
		}
		if wraps := countWrapVerbs(format); wraps < errOperands {
			pass.Reportf(call.Pos(),
				"fmt.Errorf wraps error operand without %%w (found %d error operand(s), %d %%w verb(s)); use %%w so the chain survives errors.Is/As",
				errOperands, wraps)
		}
	})
	return nil, nil
}

// constString evaluates e as a compile-time string constant (literal or
// concatenation of literals and named constants).
func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// countWrapVerbs counts %w verbs in a fmt format string, skipping %%
// and scanning past flags, width and precision.
func countWrapVerbs(format string) int {
	n := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Flags, width, precision, argument indexes.
		for i < len(format) {
			c := format[i]
			if c == '#' || c == '0' || c == '-' || c == '+' || c == ' ' ||
				c == '.' || c == '*' || c == '[' || c == ']' ||
				('0' <= c && c <= '9') {
				i++
				continue
			}
			break
		}
		if i < len(format) && format[i] == 'w' {
			n++
		}
	}
	return n
}
