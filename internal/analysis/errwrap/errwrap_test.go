package errwrap_test

import (
	"testing"

	"exaclim/internal/analysis/vettest"
)

// TestErrwrap drives the built vettool over the shared testdata module
// and diffs its JSON diagnostics against the want annotations there.
func TestErrwrapGolden(t *testing.T) {
	vettest.Run(t, "errwrap")
}
