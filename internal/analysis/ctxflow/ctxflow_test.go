package ctxflow_test

import (
	"testing"

	"exaclim/internal/analysis/vettest"
)

// TestCtxflow drives the built vettool over the shared testdata module
// and diffs its JSON diagnostics against the want annotations there.
func TestCtxflowGolden(t *testing.T) {
	vettest.Run(t, "ctxflow")
}
