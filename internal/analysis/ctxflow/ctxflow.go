// Package ctxflow defines an analyzer guarding the request-scoping
// invariant of the serving tier: every context used while answering a
// request must derive from r.Context(). A context.Background() (or
// TODO) manufactured inside the serve package detaches work from the
// request that asked for it, so the timeout and load-shedding layer —
// which cancels through the request context — silently stops governing
// that work. Derivations that drop cancellation on purpose must say so
// with context.WithoutCancel(r.Context()), which keeps request values
// and stays visibly rooted in the request.
//
// The same invariant governs trace roots: trace.New mints a root span
// detached from any parent, which is correct exactly once per request —
// in the middleware, where the traceparent header is parsed and the
// sampling decision is made. Everywhere else in the serving tier the
// span must come from the request context (trace.SpanFromContext or the
// stage helpers), so the analyzer confines trace.New to middleware.go.
package ctxflow

import (
	"go/ast"
	"path/filepath"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"exaclim/internal/analysis/internal/scope"
)

// DefaultPackages scopes the invariant to the serving tier.
const DefaultPackages = "serve"

var pkgs string

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "forbid context.Background/TODO in the serving tier; request work must " +
		"derive its context from r.Context() so timeouts and shedding govern it. " +
		"Also confine trace.New to middleware.go: root spans are minted once per " +
		"request where traceparent is parsed; everything else derives child spans " +
		"from the request context",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func init() {
	Analyzer.Flags.StringVar(&pkgs, "ctxpkgs", DefaultPackages,
		"comma-separated package basenames the request-context invariant binds")
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !scope.Match(pass, pkgs) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		if scope.InTestFile(pass, n.Pos()) {
			return
		}
		call := n.(*ast.CallExpr)
		for _, name := range [...]string{"Background", "TODO"} {
			if scope.PkgCall(pass, call, "context", name) {
				pass.Reportf(call.Pos(),
					"context.%s in the serving tier detaches work from its request; derive from r.Context() (or context.WithoutCancel of it)",
					name)
			}
		}
		if traceNewCall(pass, call) &&
			filepath.Base(pass.Fset.Position(call.Pos()).Filename) != "middleware.go" {
			pass.Reportf(call.Pos(),
				"trace.New outside middleware.go mints a detached root span; the middleware creates one root per request — derive child spans from the request context")
		}
	})
	return nil, nil
}

// traceNewCall reports whether call invokes New from a package whose
// import path is "trace" or ends in "/trace" (the repo's tracing core
// and the golden-test stub alike).
func traceNewCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "New" {
		return false
	}
	p := scope.ImportedPkg(pass, sel.X)
	return p == "trace" || strings.HasSuffix(p, "/trace")
}
