// Package ctxflow defines an analyzer guarding the request-scoping
// invariant of the serving tier: every context used while answering a
// request must derive from r.Context(). A context.Background() (or
// TODO) manufactured inside the serve package detaches work from the
// request that asked for it, so the timeout and load-shedding layer —
// which cancels through the request context — silently stops governing
// that work. Derivations that drop cancellation on purpose must say so
// with context.WithoutCancel(r.Context()), which keeps request values
// and stays visibly rooted in the request.
package ctxflow

import (
	"go/ast"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"exaclim/internal/analysis/internal/scope"
)

// DefaultPackages scopes the invariant to the serving tier.
const DefaultPackages = "serve"

var pkgs string

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "forbid context.Background/TODO in the serving tier; request work must " +
		"derive its context from r.Context() so timeouts and shedding govern it",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func init() {
	Analyzer.Flags.StringVar(&pkgs, "ctxpkgs", DefaultPackages,
		"comma-separated package basenames the request-context invariant binds")
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !scope.Match(pass, pkgs) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		if scope.InTestFile(pass, n.Pos()) {
			return
		}
		call := n.(*ast.CallExpr)
		for _, name := range [...]string{"Background", "TODO"} {
			if scope.PkgCall(pass, call, "context", name) {
				pass.Reportf(call.Pos(),
					"context.%s in the serving tier detaches work from its request; derive from r.Context() (or context.WithoutCancel of it)",
					name)
			}
		}
	})
	return nil, nil
}
