// Package legendre provides the special-function machinery under the
// spherical harmonic transform: fully-normalized associated Legendre
// functions, Wigner (small) d-matrices evaluated at pi/2 via the
// Trapani-Navaza recursion, and Gauss-Legendre quadrature used as an
// independent oracle in tests.
//
// Conventions. The fully-normalized associated Legendre function includes
// the Condon-Shortley phase and the complete spherical-harmonic
// normalization, so that
//
//	Y_lm(theta, phi) = Ptilde_l^m(cos theta) * exp(i m phi)
//
// is orthonormal over the sphere. Equivalently,
// Ptilde_l^m = sqrt((2l+1)/(4 pi) (l-m)!/(l+m)!) P_l^m with P_l^m the
// Condon-Shortley associated Legendre function.
package legendre

import (
	"fmt"
	"math"
)

// invSqrt4Pi is Ptilde_0^0, the constant Y_00.
const invSqrt4Pi = 0.28209479177387814347403972578039

// Idx returns the triangular index of (l, m) with 0 <= m <= l, laying out
// coefficient and function tables as [ (0,0), (1,0), (1,1), (2,0), ... ].
func Idx(l, m int) int { return l*(l+1)/2 + m }

// TriSize returns the table length for band limit L (degrees 0..L-1).
func TriSize(L int) int { return L * (L + 1) / 2 }

// AllAt evaluates Ptilde_l^m(cos theta) for every degree l < L and order
// 0 <= m <= l at a single point, writing into out (allocated when nil or
// too small) using the Idx layout, and returns the table.
//
// The recursion is the standard stable pair: sectoral seeds
// Ptilde_m^m = -sqrt((2m+1)/(2m)) sin(theta) Ptilde_{m-1}^{m-1} followed by
// upward three-term recursion in l at fixed m. Sectoral values underflow
// to zero for large m near the poles; within any supported band limit
// (L <= Nlat-1) the suppressed values are below 1e-290 and the zeros are
// exact to working precision (see DESIGN.md section 6).
func AllAt(L int, cosTheta, sinTheta float64, out []float64) []float64 {
	if L < 1 {
		panic(fmt.Sprintf("legendre: invalid band limit %d", L))
	}
	n := TriSize(L)
	if cap(out) < n {
		out = make([]float64, n)
	}
	out = out[:n]

	out[0] = invSqrt4Pi
	// Sectoral chain P_m^m.
	for m := 1; m < L; m++ {
		out[Idx(m, m)] = -math.Sqrt(float64(2*m+1)/float64(2*m)) * sinTheta * out[Idx(m-1, m-1)]
	}
	// First off-diagonal P_{m+1}^m, then the three-term recursion in l.
	for m := 0; m < L; m++ {
		if m+1 < L {
			out[Idx(m+1, m)] = math.Sqrt(float64(2*m+3)) * cosTheta * out[Idx(m, m)]
		}
		for l := m + 2; l < L; l++ {
			a := math.Sqrt(float64(4*l*l-1) / float64(l*l-m*m))
			b := math.Sqrt(float64((l-1)*(l-1)-m*m) / float64(4*(l-1)*(l-1)-1))
			out[Idx(l, m)] = a * (cosTheta*out[Idx(l-1, m)] - b*out[Idx(l-2, m)])
		}
	}
	return out
}

// RingTable evaluates AllAt for each of the given colatitudes, returning a
// matrix with one Idx-layout row per ring. It is the synthesis-side
// precomputation of the SHT plan. The recursion coefficients are shared
// across rings via Recur (bit-identical to per-ring AllAt).
func RingTable(L int, colatitudes []float64) [][]float64 {
	rows := make([][]float64, len(colatitudes))
	flat := make([]float64, len(colatitudes)*TriSize(L))
	rec := SharedRecur(L)
	for i, theta := range colatitudes {
		row := flat[i*TriSize(L) : (i+1)*TriSize(L)]
		s, c := math.Sincos(theta)
		rec.Eval(c, s, row)
		rows[i] = row
	}
	return rows
}

// LegendrePoly evaluates the (unnormalized) Legendre polynomial P_n(x) and
// its derivative, used by the Gauss-Legendre node solver.
func LegendrePoly(n int, x float64) (p, dp float64) {
	if n == 0 {
		return 1, 0
	}
	p0, p1 := 1.0, x
	for k := 2; k <= n; k++ {
		p0, p1 = p1, (float64(2*k-1)*x*p1-float64(k-1)*p0)/float64(k)
	}
	dp = float64(n) * (x*p1 - p0) / (x*x - 1)
	return p1, dp
}

// GaussLegendre returns the n nodes and weights of Gauss-Legendre
// quadrature on [-1, 1], exact for polynomials of degree 2n-1. Used as an
// independent quadrature oracle for orthonormality tests and as an
// alternative SHT pathway.
func GaussLegendre(n int) (nodes, weights []float64) {
	if n < 1 {
		panic(fmt.Sprintf("legendre: invalid quadrature order %d", n))
	}
	nodes = make([]float64, n)
	weights = make([]float64, n)
	for i := 0; i < (n+1)/2; i++ {
		// Tricomi-style initial guess, then Newton.
		x := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(n) + 0.5))
		var dp float64
		for iter := 0; iter < 100; iter++ {
			var p float64
			p, dp = LegendrePoly(n, x)
			dx := p / dp
			x -= dx
			if math.Abs(dx) < 1e-15 {
				break
			}
		}
		_, dp = LegendrePoly(n, x)
		w := 2 / ((1 - x*x) * dp * dp)
		nodes[i], weights[i] = -x, w
		nodes[n-1-i], weights[n-1-i] = x, w
	}
	if n%2 == 1 {
		nodes[n/2] = 0
		_, dp := LegendrePoly(n, 0)
		weights[n/2] = 2 / (dp * dp)
	}
	return nodes, weights
}
