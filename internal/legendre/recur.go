package legendre

import (
	"fmt"
	"math"
	"sync"
)

// Recur holds the colatitude-independent coefficients of the AllAt
// recursion. AllAt spends two math.Sqrt calls per (l, m) entry on
// factors that depend only on (l, m), so a table shared across
// colatitudes (all the rings of a synthesis plan, every location of a
// batch evaluator) removes the sqrt work from the per-point cost
// entirely and leaves a pure three-term multiply-add sweep.
//
// Eval walks degrees row by row (l outer, m inner), so every read —
// the previous two rows — and every write is a contiguous run in the
// Idx layout. AllAt's m-outer order strides through the triangular
// table with a growing gap instead; for the band limits where the table
// spills out of L1 the row-major order is what keeps the recursion
// streaming. The arithmetic is the exact expression AllAt uses with the
// same operand values, so Eval's output is bit-identical to AllAt's
// (pinned by TestRecurMatchesAllAt).
//
// A Recur is immutable after construction and safe for concurrent use.
type Recur struct {
	L    int
	sect []float64 // -sqrt((2m+1)/(2m)) for m = 1..L-1 (sectoral chain)
	diag []float64 // sqrt(2m+3) for m = 0..L-1 (first off-diagonal)
	a    []float64 // sqrt((4l^2-1)/(l^2-m^2)), Idx layout, rows l >= 2
	b    []float64 // sqrt(((l-1)^2-m^2)/(4(l-1)^2-1)), same layout
}

// NewRecur precomputes the recursion coefficients for band limit L.
func NewRecur(L int) *Recur {
	if L < 1 {
		panic(fmt.Sprintf("legendre: invalid band limit %d", L))
	}
	r := &Recur{
		L:    L,
		sect: make([]float64, L),
		diag: make([]float64, L),
		a:    make([]float64, TriSize(L)),
		b:    make([]float64, TriSize(L)),
	}
	for m := 1; m < L; m++ {
		r.sect[m] = -math.Sqrt(float64(2*m+1) / float64(2*m))
	}
	for m := 0; m < L; m++ {
		r.diag[m] = math.Sqrt(float64(2*m + 3))
	}
	for l := 2; l < L; l++ {
		for m := 0; m <= l-2; m++ {
			r.a[Idx(l, m)] = math.Sqrt(float64(4*l*l-1) / float64(l*l-m*m))
			r.b[Idx(l, m)] = math.Sqrt(float64((l-1)*(l-1)-m*m) / float64(4*(l-1)*(l-1)-1))
		}
	}
	return r
}

// Eval evaluates Ptilde_l^m(cos theta) for every l < L, 0 <= m <= l,
// like AllAt but using the precomputed coefficients and a row-major
// sweep. Results are bit-identical to AllAt.
func (r *Recur) Eval(cosTheta, sinTheta float64, out []float64) []float64 {
	L := r.L
	n := TriSize(L)
	if cap(out) < n {
		out = make([]float64, n)
	}
	out = out[:n]

	out[0] = invSqrt4Pi
	if L == 1 {
		return out
	}
	// Row l = 1: off-diagonal from row 0, then the sectoral seed.
	out[1] = r.diag[0] * cosTheta * out[0]
	out[2] = r.sect[1] * sinTheta * out[0]
	for l := 2; l < L; l++ {
		row := out[Idx(l, 0):]
		p1 := out[Idx(l-1, 0):Idx(l, 0)]
		p2 := out[Idx(l-2, 0):Idx(l-1, 0)]
		// Interior orders: three-term recursion from the two rows above,
		// all four streams contiguous.
		for m := 0; m <= l-2; m++ {
			row[m] = r.a[Idx(l, m)] * (cosTheta*p1[m] - r.b[Idx(l, m)]*p2[m])
		}
		// Sub-diagonal from the previous row's diagonal, then the
		// sectoral diagonal continuing the chain.
		row[l-1] = r.diag[l-1] * cosTheta * p1[l-1]
		row[l] = r.sect[l] * sinTheta * p1[l-1]
	}
	return out
}

// sharedRecur caches one Recur per band limit: a process serves a
// handful of distinct L values (typically one), and every evaluator
// construction at that L shares the same immutable table.
var sharedRecur sync.Map // int -> *Recur

// SharedRecur returns the process-wide shared coefficient table for
// band limit L, building it on first use.
func SharedRecur(L int) *Recur {
	if v, ok := sharedRecur.Load(L); ok {
		return v.(*Recur)
	}
	r := NewRecur(L)
	if prev, loaded := sharedRecur.LoadOrStore(L, r); loaded {
		return prev.(*Recur)
	}
	return r
}
