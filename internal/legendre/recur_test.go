package legendre

import (
	"math"
	"testing"
)

// TestRecurMatchesAllAt pins Recur.Eval to AllAt bit for bit: the
// row-major sweep reorders the table walk but evaluates the exact same
// expressions on the same operands, so blocked consumers (synthesis,
// evaluators) inherit AllAt's numerics unchanged.
func TestRecurMatchesAllAt(t *testing.T) {
	thetas := []float64{0, 1e-9, 0.3, math.Pi / 2, 2.5, math.Pi - 1e-9, math.Pi}
	for _, L := range []int{1, 2, 3, 5, 16, 64, 129} {
		r := NewRecur(L)
		var got []float64
		for _, theta := range thetas {
			s, c := math.Sincos(theta)
			want := AllAt(L, c, s, nil)
			got = r.Eval(c, s, got)
			if len(got) != len(want) {
				t.Fatalf("L=%d: Eval returned %d entries, want %d", L, len(got), len(want))
			}
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("L=%d theta=%g: entry %d = %x, AllAt gives %x",
						L, theta, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
				}
			}
		}
	}
}

// TestSharedRecur checks the per-L cache returns one shared table.
func TestSharedRecur(t *testing.T) {
	a, b := SharedRecur(33), SharedRecur(33)
	if a != b {
		t.Fatalf("SharedRecur(33) returned distinct tables")
	}
	if a.L != 33 {
		t.Fatalf("SharedRecur(33).L = %d", a.L)
	}
}

func BenchmarkRecurEval(b *testing.B) {
	const L = 64
	r := NewRecur(L)
	s, c := math.Sincos(1.1)
	out := make([]float64, TriSize(L))
	b.Run("recur", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.Eval(c, s, out)
		}
	})
	b.Run("allat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			AllAt(L, c, s, out)
		}
	})
}
