package legendre

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestLowOrderClosedForms compares AllAt against the textbook spherical
// harmonics (Condon-Shortley phase included).
func TestLowOrderClosedForms(t *testing.T) {
	thetas := []float64{0.1, 0.7, math.Pi / 2, 2.2, 3.0}
	for _, theta := range thetas {
		s, c := math.Sincos(theta)
		p := AllAt(3, c, s, nil)
		want := map[[2]int]float64{
			{0, 0}: math.Sqrt(1 / (4 * math.Pi)),
			{1, 0}: math.Sqrt(3/(4*math.Pi)) * c,
			{1, 1}: -math.Sqrt(3/(8*math.Pi)) * s,
			{2, 0}: math.Sqrt(5/(16*math.Pi)) * (3*c*c - 1),
			{2, 1}: -math.Sqrt(15/(8*math.Pi)) * s * c,
			{2, 2}: math.Sqrt(15/(32*math.Pi)) * s * s,
		}
		for lm, w := range want {
			got := p[Idx(lm[0], lm[1])]
			if math.Abs(got-w) > 1e-14 {
				t.Errorf("theta=%g: Ptilde(%d,%d) = %.16g, want %.16g", theta, lm[0], lm[1], got, w)
			}
		}
	}
}

// TestOrthonormality integrates Ptilde_l^m Ptilde_l'^m over [-1,1] with
// Gauss-Legendre quadrature; with the 2*pi longitudinal factor the result
// must be the identity.
func TestOrthonormality(t *testing.T) {
	const L = 16
	nodes, weights := GaussLegendre(64)
	tables := make([][]float64, len(nodes))
	for i, x := range nodes {
		tables[i] = AllAt(L, x, math.Sqrt(1-x*x), nil)
	}
	for m := 0; m < L; m++ {
		for l1 := m; l1 < L; l1++ {
			for l2 := l1; l2 < L; l2++ {
				sum := 0.0
				for i := range nodes {
					sum += weights[i] * tables[i][Idx(l1, m)] * tables[i][Idx(l2, m)]
				}
				sum *= 2 * math.Pi
				want := 0.0
				if l1 == l2 {
					want = 1
				}
				if math.Abs(sum-want) > 1e-11 {
					t.Errorf("<Y(%d,%d),Y(%d,%d)> = %g, want %g", l1, m, l2, m, sum, want)
				}
			}
		}
	}
}

// TestParity: Ptilde_l^m(-x) = (-1)^(l+m) Ptilde_l^m(x).
func TestParity(t *testing.T) {
	f := func(raw float64) bool {
		x := math.Mod(raw, 1)
		if math.Abs(x) >= 1 || math.IsNaN(x) {
			return true
		}
		s := math.Sqrt(1 - x*x)
		pPos := AllAt(12, x, s, nil)
		pNeg := AllAt(12, -x, s, nil)
		for l := 0; l < 12; l++ {
			for m := 0; m <= l; m++ {
				sign := 1.0
				if (l+m)&1 == 1 {
					sign = -1
				}
				if math.Abs(pNeg[Idx(l, m)]-sign*pPos[Idx(l, m)]) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestAdditionTheorem: sum_m |Y_lm(theta,phi)|^2 = (2l+1)/(4 pi),
// independent of the point. Exercises all orders together.
func TestAdditionTheorem(t *testing.T) {
	for _, theta := range []float64{0.3, 1.1, 2.0, 2.9} {
		s, c := math.Sincos(theta)
		p := AllAt(24, c, s, nil)
		for l := 0; l < 24; l++ {
			sum := p[Idx(l, 0)] * p[Idx(l, 0)]
			for m := 1; m <= l; m++ {
				sum += 2 * p[Idx(l, m)] * p[Idx(l, m)]
			}
			want := float64(2*l+1) / (4 * math.Pi)
			if math.Abs(sum-want) > 1e-12*want {
				t.Errorf("theta=%g l=%d: addition theorem sum %g, want %g", theta, l, sum, want)
			}
		}
	}
}

func TestRingTable(t *testing.T) {
	colat := []float64{0.2, 1.0, 2.5}
	rows := RingTable(8, colat)
	for i, theta := range colat {
		s, c := math.Sincos(theta)
		want := AllAt(8, c, s, nil)
		for k := range want {
			if rows[i][k] != want[k] {
				t.Fatalf("ring %d entry %d mismatch", i, k)
			}
		}
	}
}

func TestGaussLegendreExactness(t *testing.T) {
	nodes, weights := GaussLegendre(12)
	sumW := 0.0
	for _, w := range weights {
		sumW += w
	}
	if math.Abs(sumW-2) > 1e-13 {
		t.Errorf("weights sum to %g, want 2", sumW)
	}
	// Exact for monomials up to degree 2n-1 = 23.
	for k := 0; k <= 23; k++ {
		sum := 0.0
		for i, x := range nodes {
			sum += weights[i] * math.Pow(x, float64(k))
		}
		want := 0.0
		if k%2 == 0 {
			want = 2 / float64(k+1)
		}
		if math.Abs(sum-want) > 1e-12 {
			t.Errorf("integral of x^%d = %g, want %g", k, sum, want)
		}
	}
}

func TestGaussLegendreNodesSortedSymmetric(t *testing.T) {
	for _, n := range []int{1, 2, 5, 17, 64} {
		nodes, weights := GaussLegendre(n)
		for i := 1; i < n; i++ {
			if nodes[i] <= nodes[i-1] {
				t.Fatalf("n=%d: nodes not strictly increasing at %d", n, i)
			}
		}
		for i := 0; i < n/2; i++ {
			if math.Abs(nodes[i]+nodes[n-1-i]) > 1e-14 {
				t.Errorf("n=%d: nodes not symmetric at %d", n, i)
			}
			if math.Abs(weights[i]-weights[n-1-i]) > 1e-14 {
				t.Errorf("n=%d: weights not symmetric at %d", n, i)
			}
		}
	}
}

// TestDeltaAgainstDirect compares the Trapani-Navaza tables against the
// brute-force factorial formula for every (l, m, n) with l <= 8, including
// negative orders through At.
func TestDeltaAgainstDirect(t *testing.T) {
	d := NewDelta(9)
	for l := 0; l <= 8; l++ {
		for m := -l; m <= l; m++ {
			for n := -l; n <= l; n++ {
				want := WignerDirect(l, m, n, math.Pi/2)
				got := d.At(l, m, n)
				if math.Abs(got-want) > 1e-12 {
					t.Errorf("Delta(%d,%d,%d) = %.15g, want %.15g", l, m, n, got, want)
				}
			}
		}
	}
}

// TestDeltaOrthogonality: d^l(pi/2) is an orthogonal matrix, so its
// columns are orthonormal: sum_k Delta_{k,m} Delta_{k,n} = delta_{mn}.
// Run at a degree large enough to stress recursion stability.
func TestDeltaOrthogonality(t *testing.T) {
	const l = 60
	d := NewDelta(l + 1)
	for m := 0; m <= l; m += 7 {
		for n := m; n <= l; n += 5 {
			sum := 0.0
			for k := -l; k <= l; k++ {
				sum += d.At(l, k, m) * d.At(l, k, n)
			}
			want := 0.0
			if m == n {
				want = 1
			}
			if math.Abs(sum-want) > 1e-11 {
				t.Errorf("column orthogonality (%d,%d) = %g, want %g", m, n, sum, want)
			}
		}
	}
}

// TestDeltaSymmetries verifies the sign rules used by At against the
// direct formula once more, and internal consistency of double negation.
func TestDeltaSymmetries(t *testing.T) {
	d := NewDelta(13)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		l := rng.Intn(12) + 1
		m := rng.Intn(2*l+1) - l
		n := rng.Intn(2*l+1) - l
		base := d.At(l, m, n)
		// Transpose rule: Delta_{n,m} = (-1)^(m-n) Delta_{m,n}.
		sign := 1.0
		if (m-n)&1 != 0 {
			sign = -1
		}
		if got := d.At(l, n, m); math.Abs(got-sign*base) > 1e-12 {
			t.Fatalf("transpose symmetry failed at l=%d m=%d n=%d", l, m, n)
		}
		// Double negation: Delta_{-m,-n} = (-1)^(m-n) Delta_{m,n}.
		if got := d.At(l, -m, -n); math.Abs(got-sign*base) > 1e-12 {
			t.Fatalf("negation symmetry failed at l=%d m=%d n=%d", l, m, n)
		}
	}
}

// TestFourierExpansionOfWignerD is the conventions linchpin for the SHT:
// d^l_{m,0}(theta) = i^(-m) sum_{m'} Delta_{m',0} Delta_{m',m} e^(i m' theta)
// must match the Legendre route d^l_{m,0} = Ptilde_l^m / sqrt((2l+1)/4pi).
func TestFourierExpansionOfWignerD(t *testing.T) {
	const L = 24
	d := NewDelta(L)
	for _, theta := range []float64{0.17, 0.9, 1.57, 2.4, 3.0} {
		s, c := math.Sincos(theta)
		p := AllAt(L, c, s, nil)
		for l := 0; l < L; l += 3 {
			for m := 0; m <= l; m++ {
				var sum complex128
				for mp := -l; mp <= l; mp++ {
					w := d.At(l, mp, 0) * d.At(l, mp, m)
					sArg, cArg := math.Sincos(float64(mp) * theta)
					sum += complex(w*cArg, w*sArg)
				}
				// Multiply by i^(-m).
				switch ((m % 4) + 4) % 4 {
				case 1:
					sum *= complex(0, -1)
				case 2:
					sum *= -1
				case 3:
					sum *= complex(0, 1)
				}
				want := p[Idx(l, m)] / math.Sqrt(float64(2*l+1)/(4*math.Pi))
				if math.Abs(real(sum)-want) > 1e-11 || math.Abs(imag(sum)) > 1e-11 {
					t.Fatalf("l=%d m=%d theta=%g: Fourier expansion %v, want %g", l, m, theta, sum, want)
				}
			}
		}
	}
}

func TestDeltaIterMatchesBatch(t *testing.T) {
	const L = 20
	d := NewDelta(L)
	it := NewDeltaIter()
	for l := 0; l < L; l++ {
		tbl := it.Next()
		if it.Degree() != l {
			t.Fatalf("iterator degree %d, want %d", it.Degree(), l)
		}
		want := d.Table(l)
		if len(tbl) != len(want) {
			t.Fatalf("degree %d: table size %d, want %d", l, len(tbl), len(want))
		}
		for k := range tbl {
			if tbl[k] != want[k] {
				t.Fatalf("degree %d entry %d: iter %g batch %g", l, k, tbl[k], want[k])
			}
		}
	}
}

func TestDeltaBytes(t *testing.T) {
	d := NewDelta(4)
	// 1 + 4 + 9 + 16 = 30 entries.
	if got := d.Bytes(); got != 30*8 {
		t.Errorf("Bytes = %d, want %d", got, 30*8)
	}
}

func TestWignerDirectPanicsOnLargeDegree(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WignerDirect(13,...) did not panic")
		}
	}()
	WignerDirect(13, 0, 0, 1)
}

func BenchmarkAllAt_L128(b *testing.B) {
	out := make([]float64, TriSize(128))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AllAt(128, 0.3, math.Sqrt(1-0.09), out)
	}
}

func BenchmarkNewDelta_L64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NewDelta(64)
	}
}
