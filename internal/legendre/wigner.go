package legendre

import (
	"fmt"
	"math"
)

// Delta holds the Wigner small-d matrices at beta = pi/2,
// Delta^l_{m,n} = d^l_{m,n}(pi/2), for all degrees l < L and non-negative
// orders 0 <= m, n <= l. Negative orders are served through the exact
// symmetries
//
//	Delta_{-m,n} = (-1)^(l-n) Delta_{m,n}
//	Delta_{m,-n} = (-1)^(l+m) Delta_{m,n}
//
// The tables are computed once with the Trapani-Navaza recursion, which is
// numerically stable to degrees far beyond any band limit used here, and
// are the paper's precomputed "Wigner-d matrix" (Section III-A2): they are
// data-independent and shared across all time steps of the SHT.
//
// Storage is sum_{l<L} (l+1)^2 ~= L^3/3 float64s, the O(L^3) space cost
// stated in the paper.
type Delta struct {
	L      int
	tables [][]float64 // tables[l][m*(l+1)+n]
}

// NewDelta computes all Delta tables for degrees l < L.
func NewDelta(L int) *Delta {
	if L < 1 {
		panic(fmt.Sprintf("legendre: invalid band limit %d", L))
	}
	d := &Delta{L: L, tables: make([][]float64, L)}
	it := NewDeltaIter()
	for l := 0; l < L; l++ {
		d.tables[l] = append([]float64(nil), it.Next()...)
	}
	return d
}

// At returns Delta^l_{m,n} for any -l <= m, n <= l.
func (d *Delta) At(l, m, n int) float64 {
	sign := 1.0
	if m < 0 {
		if (l-n)&1 != 0 {
			sign = -sign
		}
		m = -m
	}
	if n < 0 {
		if (l+m)&1 != 0 {
			sign = -sign
		}
		n = -n
	}
	return sign * d.tables[l][m*(l+1)+n]
}

// Table returns the raw non-negative-order table for degree l, indexed as
// tbl[m*(l+1)+n]. Callers on hot paths use this with explicit symmetry
// handling to avoid the At call overhead.
func (d *Delta) Table(l int) []float64 { return d.tables[l] }

// Bytes returns the memory footprint of the tables, for the plan's
// memory accounting.
func (d *Delta) Bytes() int64 {
	var total int64
	for _, t := range d.tables {
		total += int64(len(t)) * 8
	}
	return total
}

// DeltaIter streams the Delta tables degree by degree in O(L^2) working
// memory, for memory-constrained passes that do not want the full O(L^3)
// cache resident (the paper's largest band limits).
type DeltaIter struct {
	l    int
	cur  []float64 // Delta^l, (l+1)x(l+1) row-major
	prev []float64
}

// NewDeltaIter returns an iterator positioned before degree 0.
func NewDeltaIter() *DeltaIter { return &DeltaIter{l: -1} }

// Degree returns the degree of the table most recently returned by Next,
// or -1 before the first call.
func (it *DeltaIter) Degree() int { return it.l }

// Next advances to the next degree and returns its table, valid until the
// following call to Next. The first call returns degree 0.
func (it *DeltaIter) Next() []float64 {
	it.l++
	l := it.l
	it.prev, it.cur = it.cur, it.prev
	if cap(it.cur) < (l+1)*(l+1) {
		it.cur = make([]float64, (l+1)*(l+1))
	}
	it.cur = it.cur[:(l+1)*(l+1)]
	cur, prev := it.cur, it.prev
	if l == 0 {
		cur[0] = 1
		return cur
	}
	w := l + 1
	// Seed row m = l from degree l-1 (Trapani-Navaza).
	cur[l*w] = -math.Sqrt(float64(2*l-1)/float64(2*l)) * prev[(l-1)*l]
	for n := 1; n <= l; n++ {
		cur[l*w+n] = math.Sqrt(float64(l)*float64(2*l-1)/(2*float64(l+n)*float64(l+n-1))) * prev[(l-1)*l+(n-1)]
	}
	// Downward recursion in m at fixed n.
	for m := l - 1; m >= 0; m-- {
		lm := float64(l-m) * float64(l+m+1)
		c1 := 2 / math.Sqrt(lm)
		var c2 float64
		if m+2 <= l {
			c2 = math.Sqrt(float64(l-m-1) * float64(l+m+2) / lm)
		}
		for n := 0; n <= l; n++ {
			v := float64(n) * c1 * cur[(m+1)*w+n]
			if m+2 <= l {
				v -= c2 * cur[(m+2)*w+n]
			}
			cur[m*w+n] = v
		}
	}
	return cur
}

// factorials up to 34! fit exactly enough in float64 for the brute-force
// reference below (used only in tests for small l).
var factorial = func() [35]float64 {
	var f [35]float64
	f[0] = 1
	for i := 1; i < len(f); i++ {
		f[i] = f[i-1] * float64(i)
	}
	return f
}()

// WignerDirect evaluates d^l_{m,n}(beta) by the explicit factorial sum.
// It is exponentially unstable for large l and exists solely as a
// small-degree oracle (l <= 12) for tests.
func WignerDirect(l, m, n int, beta float64) float64 {
	if l > 12 {
		panic("legendre: WignerDirect is a small-degree test oracle (l <= 12)")
	}
	if m < -l || m > l || n < -l || n > l {
		return 0
	}
	cb := math.Cos(beta / 2)
	sb := math.Sin(beta / 2)
	pre := math.Sqrt(factorial[l+m] * factorial[l-m] * factorial[l+n] * factorial[l-n])
	sum := 0.0
	for s := 0; s <= 2*l; s++ {
		d1 := l + n - s
		d2 := m - n + s
		d3 := l - m - s
		if d1 < 0 || d2 < 0 || d3 < 0 {
			continue
		}
		sign := 1.0
		if d2&1 == 1 {
			sign = -1
		}
		term := sign / (factorial[d1] * factorial[s] * factorial[d2] * factorial[d3])
		term *= math.Pow(cb, float64(2*l+n-m-2*s)) * math.Pow(sb, float64(m-n+2*s))
		sum += term
	}
	return pre * sum
}
