// Package fft provides fast Fourier transforms of arbitrary length built
// from an iterative radix-2 kernel and Bluestein's chirp-z algorithm.
//
// The forward transform computes X[k] = sum_j x[j] exp(-2*pi*i*j*k/n) and
// the inverse computes x[j] = (1/n) sum_k X[k] exp(+2*pi*i*j*k/n), so that
// Inverse(Forward(x)) == x up to rounding.
//
// The package is the workhorse under the spherical harmonic transform: the
// longitudinal transform of every latitude ring and the colatitude
// extension transform both reduce to FFTs whose lengths (e.g. 1440, 96,
// 2Nθ-2) are not powers of two, hence the Bluestein path.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// Plan holds the precomputed twiddle factors and scratch buffers for
// transforms of a fixed length. A Plan is cheap to reuse and amortizes all
// trigonometric evaluation; it is not safe for concurrent use (clone one
// per goroutine with Clone).
type Plan struct {
	n    int
	pow2 bool

	// Radix-2 machinery (used directly when n is a power of two, and for
	// the inner transforms of the Bluestein path otherwise).
	m        int          // power-of-two transform length
	twiddle  []complex128 // m/2 forward twiddles
	itwiddle []complex128 // m/2 inverse twiddles
	rev      []int        // bit-reversal permutation of length m

	// Bluestein machinery (nil when n is a power of two).
	chirp    []complex128 // exp(-i*pi*j^2/n), length n
	bfft     []complex128 // FFT of the zero-padded conjugate chirp, length m
	scratch  []complex128 // length m work area
	scratchB []complex128 // second length m work area
}

// NewPlan creates a transform plan for length n. It panics if n <= 0;
// degenerate lengths are programming errors, not runtime conditions.
func NewPlan(n int) *Plan {
	if n <= 0 {
		panic(fmt.Sprintf("fft: invalid transform length %d", n))
	}
	p := &Plan{n: n}
	if n&(n-1) == 0 {
		p.pow2 = true
		p.m = n
		p.initRadix2()
		return p
	}
	// Bluestein: we need a power-of-two length m >= 2n-1.
	p.m = 1 << bits.Len(uint(2*n-2))
	p.initRadix2()
	p.initBluestein()
	return p
}

// Len returns the transform length the plan was built for.
func (p *Plan) Len() int { return p.n }

// Clone returns an independent plan sharing the immutable twiddle tables
// but with private scratch space, suitable for use in another goroutine.
func (p *Plan) Clone() *Plan {
	q := *p
	if p.scratch != nil {
		q.scratch = make([]complex128, p.m)
		q.scratchB = make([]complex128, p.m)
	}
	return &q
}

func (p *Plan) initRadix2() {
	m := p.m
	p.twiddle = make([]complex128, m/2)
	p.itwiddle = make([]complex128, m/2)
	for i := 0; i < m/2; i++ {
		s, c := math.Sincos(-2 * math.Pi * float64(i) / float64(m))
		p.twiddle[i] = complex(c, s)
		p.itwiddle[i] = complex(c, -s)
	}
	p.rev = make([]int, m)
	shift := 64 - uint(bits.Len(uint(m-1)))
	if m == 1 {
		shift = 64
	}
	for i := range p.rev {
		p.rev[i] = int(bits.Reverse64(uint64(i)) >> shift)
	}
}

func (p *Plan) initBluestein() {
	n, m := p.n, p.m
	p.chirp = make([]complex128, n)
	for j := 0; j < n; j++ {
		// exp(-i*pi*j^2/n); reduce j^2 mod 2n first to keep the argument
		// small and the sincos accurate for large n.
		jj := (int64(j) * int64(j)) % int64(2*n)
		s, c := math.Sincos(-math.Pi * float64(jj) / float64(n))
		p.chirp[j] = complex(c, s)
	}
	b := make([]complex128, m)
	b[0] = cmplx.Conj(p.chirp[0])
	for j := 1; j < n; j++ {
		cc := cmplx.Conj(p.chirp[j])
		b[j] = cc
		b[m-j] = cc
	}
	p.radix2(b, p.twiddle)
	p.bfft = b
	p.scratch = make([]complex128, m)
	p.scratchB = make([]complex128, m)
}

// radix2 runs an in-place decimation-in-time FFT of length p.m on x using
// the supplied twiddle table (forward or inverse).
func (p *Plan) radix2(x []complex128, tw []complex128) {
	m := p.m
	for i, r := range p.rev {
		if i < r {
			x[i], x[r] = x[r], x[i]
		}
	}
	for size := 2; size <= m; size <<= 1 {
		half := size >> 1
		step := m / size
		for start := 0; start < m; start += size {
			k := 0
			for j := start; j < start+half; j++ {
				t := tw[k] * x[j+half]
				x[j+half] = x[j] - t
				x[j] = x[j] + t
				k += step
			}
		}
	}
}

// Forward computes the forward DFT of src into dst. The slices must both
// have length Plan.Len and may alias each other.
func (p *Plan) Forward(dst, src []complex128) {
	p.transform(dst, src, false)
}

// Inverse computes the inverse DFT (including the 1/n normalization) of
// src into dst. The slices must both have length Plan.Len and may alias.
func (p *Plan) Inverse(dst, src []complex128) {
	p.transform(dst, src, true)
}

func (p *Plan) transform(dst, src []complex128, inverse bool) {
	if len(dst) != p.n || len(src) != p.n {
		panic(fmt.Sprintf("fft: length mismatch: plan %d, dst %d, src %d", p.n, len(dst), len(src)))
	}
	if p.pow2 {
		if &dst[0] != &src[0] {
			copy(dst, src)
		}
		if inverse {
			p.radix2(dst, p.itwiddle)
			scale := 1 / float64(p.n)
			for i := range dst {
				dst[i] = complex(real(dst[i])*scale, imag(dst[i])*scale)
			}
		} else {
			p.radix2(dst, p.twiddle)
		}
		return
	}
	p.bluestein(dst, src, inverse)
}

// bluestein evaluates the length-n DFT as a convolution with a chirp. The
// inverse is obtained from the forward transform by conjugation:
// IDFT(x) = conj(DFT(conj(x)))/n.
func (p *Plan) bluestein(dst, src []complex128, inverse bool) {
	n, m := p.n, p.m
	a := p.scratch
	for i := range a {
		a[i] = 0
	}
	if inverse {
		for j := 0; j < n; j++ {
			a[j] = cmplx.Conj(src[j]) * p.chirp[j]
		}
	} else {
		for j := 0; j < n; j++ {
			a[j] = src[j] * p.chirp[j]
		}
	}
	p.radix2(a, p.twiddle)
	for i := 0; i < m; i++ {
		a[i] *= p.bfft[i]
	}
	// Unscaled inverse radix-2 of a.
	p.radix2(a, p.itwiddle)
	scale := 1 / float64(m)
	if inverse {
		scale /= float64(n)
		for k := 0; k < n; k++ {
			v := a[k] * p.chirp[k]
			dst[k] = complex(real(v)*scale, -imag(v)*scale)
		}
		return
	}
	for k := 0; k < n; k++ {
		v := a[k] * p.chirp[k]
		dst[k] = complex(real(v)*scale, imag(v)*scale)
	}
}

// Forward is a convenience one-shot forward transform. For repeated
// transforms of the same length build a Plan.
func Forward(x []complex128) {
	NewPlan(len(x)).Forward(x, x)
}

// Inverse is a convenience one-shot inverse transform.
func Inverse(x []complex128) {
	NewPlan(len(x)).Inverse(x, x)
}

// Naive computes the DFT by direct summation in O(n^2). It exists as an
// oracle for tests and as a reference for very small n.
func Naive(src []complex128, inverse bool) []complex128 {
	n := len(src)
	dst := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			ang := sign * 2 * math.Pi * float64((j*k)%n) / float64(n)
			s, c := math.Sincos(ang)
			sum += src[j] * complex(c, s)
		}
		if inverse {
			sum /= complex(float64(n), 0)
		}
		dst[k] = sum
	}
	return dst
}
