package fft

import (
	"fmt"
	"math"
)

// RealPlan computes inverse transforms whose output is real, consuming
// only the non-redundant half of the Hermitian spectrum. For even n it
// runs a single complex transform of length n/2 — the classic two-for-one
// split: the half spectrum is repacked into the spectrum of the
// interleaved sequence z[j] = x[2j] + i*x[2j+1], one length-n/2 inverse
// recovers z, and the real output falls out by de-interleaving. Odd
// lengths fall back to the full complex plan (they cannot split), so
// callers never need a parity check.
//
// Like Plan, a RealPlan amortizes all trigonometric work and is not safe
// for concurrent use; clone one per goroutine with Clone. Clones share
// the immutable twiddle tables and carry only fresh scratch.
type RealPlan struct {
	n    int
	half *Plan        // length n/2 inverse engine (even n)
	full *Plan        // full-length fallback (odd n)
	w    []complex128 // i*exp(+2*pi*i*k/n), k = 0..n/2-1 (even n)
	spec []complex128 // scratch: repacked spectrum, length SpecLen-1 or n
}

// NewRealPlan prepares an inverse real transform of length n.
func NewRealPlan(n int) *RealPlan {
	if n <= 0 {
		panic(fmt.Sprintf("fft: invalid real transform length %d", n))
	}
	p := &RealPlan{n: n}
	if n%2 != 0 {
		p.full = NewPlan(n)
		p.spec = make([]complex128, n)
		return p
	}
	h := n / 2
	p.half = NewPlan(h)
	p.w = make([]complex128, h)
	for k := range p.w {
		s, c := math.Sincos(2 * math.Pi * float64(k) / float64(n))
		p.w[k] = complex(-s, c) // i * (c + i*s)
	}
	p.spec = make([]complex128, h)
	return p
}

// Len returns the real output length n.
func (p *RealPlan) Len() int { return p.n }

// SpecLen returns the half-spectrum length n/2+1: the number of
// independent Hermitian coefficients X[0..n/2] the caller must supply to
// Inverse. (For odd n the last entry is the conjugate-symmetric midpoint
// partner and is still consumed.)
func (p *RealPlan) SpecLen() int { return p.n/2 + 1 }

// Clone returns an independent plan sharing the immutable twiddle tables
// but carrying its own scratch, for concurrent use from another
// goroutine.
func (p *RealPlan) Clone() *RealPlan {
	q := *p
	if p.half != nil {
		q.half = p.half.Clone()
	}
	if p.full != nil {
		q.full = p.full.Clone()
	}
	q.spec = make([]complex128, len(p.spec))
	return &q
}

// Inverse computes the length-n inverse transform of the Hermitian
// spectrum given by its non-redundant half, writing the real output into
// dst:
//
//	dst[j] = (1/n) * sum_k X[k] exp(+2*pi*i*j*k/n)
//
// where X[k] = spec[k] for k <= n/2 and X[n-k] = conj(spec[k]) for the
// mirrored half. The normalization matches Plan.Inverse. spec must have
// length SpecLen() and dst length Len(); spec is not modified. For the
// output to be exactly the real sequence implied, spec[0] (and, for even
// n, spec[n/2]) should carry zero imaginary part; any imaginary residue
// there is dropped.
func (p *RealPlan) Inverse(dst []float64, spec []complex128) {
	if len(dst) != p.n || len(spec) != p.SpecLen() {
		panic(fmt.Sprintf("fft: real inverse size mismatch: dst %d spec %d want %d/%d",
			len(dst), len(spec), p.n, p.SpecLen()))
	}
	if p.full != nil {
		// Odd length: complete the conjugate half and run the full plan.
		n := p.n
		z := p.spec
		z[0] = complex(real(spec[0]), 0)
		for k := 1; k <= n/2; k++ {
			z[k] = spec[k]
			z[n-k] = complex(real(spec[k]), -imag(spec[k]))
		}
		p.full.Inverse(z, z)
		for j := 0; j < n; j++ {
			dst[j] = real(z[j])
		}
		return
	}
	h := p.n / 2
	z := p.transformHalf(spec)
	for j := 0; j < h; j++ {
		dst[2*j] = real(z[j]) * 0.5
		dst[2*j+1] = imag(z[j]) * 0.5
	}
}

// InverseF32 is Inverse with the output narrowed to float32 in the
// de-interleave pass itself, for callers that keep float32 grids — it
// skips the float64 intermediate row a separate narrowing pass would
// need. Same normalization and contracts as Inverse.
func (p *RealPlan) InverseF32(dst []float32, spec []complex128) {
	if len(dst) != p.n || len(spec) != p.SpecLen() {
		panic(fmt.Sprintf("fft: real inverse size mismatch: dst %d spec %d want %d/%d",
			len(dst), len(spec), p.n, p.SpecLen()))
	}
	if p.full != nil {
		n := p.n
		z := p.spec
		z[0] = complex(real(spec[0]), 0)
		for k := 1; k <= n/2; k++ {
			z[k] = spec[k]
			z[n-k] = complex(real(spec[k]), -imag(spec[k]))
		}
		p.full.Inverse(z, z)
		for j := 0; j < n; j++ {
			dst[j] = float32(real(z[j]))
		}
		return
	}
	h := p.n / 2
	z := p.transformHalf(spec)
	for j := 0; j < h; j++ {
		dst[2*j] = float32(real(z[j]) * 0.5)
		dst[2*j+1] = float32(imag(z[j]) * 0.5)
	}
}

// transformHalf repacks X[0..h] into the length-h spectrum of the
// interleaved sequence — Z[k] = (X[k] + conj(X[h-k])) + i*w[k]*(X[k] -
// conj(X[h-k])) — and inverts it in place. The inverse of Z is u[j] =
// x[2j]/2 + i*x[2j+1]/2 under the 1/h normalization of the half plan,
// hence the halving in the de-interleave passes above.
func (p *RealPlan) transformHalf(spec []complex128) []complex128 {
	h := p.n / 2
	z := p.spec
	for k := 0; k < h; k++ {
		a := spec[k]
		b := complex(real(spec[h-k]), -imag(spec[h-k]))
		z[k] = (a + b) + p.w[k]*(a-b)
	}
	p.half.Inverse(z, z)
	return z
}
