package fft

import (
	"math"
	"math/rand"
	"testing"
)

// hermitianSpec builds a random half spectrum of length n/2+1 whose
// implied full spectrum is Hermitian (so the inverse is real), plus the
// completed full spectrum for the oracle.
func hermitianSpec(rng *rand.Rand, n int) (half, full []complex128) {
	half = make([]complex128, n/2+1)
	full = make([]complex128, n)
	half[0] = complex(rng.NormFloat64(), 0)
	full[0] = half[0]
	for k := 1; k <= n/2; k++ {
		c := complex(rng.NormFloat64(), rng.NormFloat64())
		if 2*k == n { // Nyquist bin of an even length must be real
			c = complex(real(c), 0)
		}
		half[k] = c
		full[k] = c
		full[n-k] = complex(real(c), -imag(c))
	}
	return half, full
}

func TestRealPlanMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 4, 5, 6, 8, 10, 12, 15, 16, 31, 32, 63, 64, 96, 127, 128, 130, 258} {
		p := NewRealPlan(n)
		if p.Len() != n || p.SpecLen() != n/2+1 {
			t.Fatalf("n=%d: Len=%d SpecLen=%d", n, p.Len(), p.SpecLen())
		}
		half, full := hermitianSpec(rng, n)
		specCopy := append([]complex128(nil), half...)
		want := Naive(full, true)
		dst := make([]float64, n)
		p.Inverse(dst, half)
		for j := 0; j < n; j++ {
			if d := math.Abs(dst[j] - real(want[j])); d > 1e-11 {
				t.Fatalf("n=%d j=%d: got %v want %v (|Δ|=%g)", n, j, dst[j], real(want[j]), d)
			}
			if im := math.Abs(imag(want[j])); im > 1e-11 {
				t.Fatalf("n=%d j=%d: oracle output not real (imag %g)", n, j, im)
			}
		}
		for k := range half {
			if half[k] != specCopy[k] {
				t.Fatalf("n=%d: Inverse modified spec[%d]", n, k)
			}
		}
		dst32 := make([]float32, n)
		p.InverseF32(dst32, half)
		for j := 0; j < n; j++ {
			if dst32[j] != float32(dst[j]) {
				t.Fatalf("n=%d j=%d: InverseF32=%v, narrowed Inverse=%v", n, j, dst32[j], float32(dst[j]))
			}
		}
	}
}

func TestRealPlanCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{9, 64} {
		p := NewRealPlan(n)
		q := p.Clone()
		half, full := hermitianSpec(rng, n)
		want := Naive(full, true)
		a := make([]float64, n)
		b := make([]float64, n)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < 50; i++ {
				q.Inverse(b, half)
			}
		}()
		for i := 0; i < 50; i++ {
			p.Inverse(a, half)
		}
		<-done
		for j := 0; j < n; j++ {
			if math.Abs(a[j]-real(want[j])) > 1e-11 || a[j] != b[j] {
				t.Fatalf("n=%d j=%d: plan %v clone %v want %v", n, j, a[j], b[j], real(want[j]))
			}
		}
	}
}
