package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSlice(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxAbsDiff(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// testLengths exercises powers of two, primes, and the composite lengths
// that the SHT actually produces (2Nθ-2 and Nφ for ERA5-like grids).
var testLengths = []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32, 45, 64, 96, 97, 128, 180, 240, 360, 719, 720, 1440}

func TestForwardMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range testLengths {
		if n > 512 {
			continue // keep the O(n^2) oracle cheap
		}
		src := randSlice(rng, n)
		want := Naive(src, false)
		got := make([]complex128, n)
		NewPlan(n).Forward(got, src)
		if d := maxAbsDiff(got, want); d > 1e-9*float64(n) {
			t.Errorf("n=%d: forward mismatch vs naive DFT: max diff %g", n, d)
		}
	}
}

func TestInverseMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range testLengths {
		if n > 512 {
			continue
		}
		src := randSlice(rng, n)
		want := Naive(src, true)
		got := make([]complex128, n)
		NewPlan(n).Inverse(got, src)
		if d := maxAbsDiff(got, want); d > 1e-9*float64(n) {
			t.Errorf("n=%d: inverse mismatch vs naive IDFT: max diff %g", n, d)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range testLengths {
		src := randSlice(rng, n)
		p := NewPlan(n)
		mid := make([]complex128, n)
		out := make([]complex128, n)
		p.Forward(mid, src)
		p.Inverse(out, mid)
		if d := maxAbsDiff(out, src); d > 1e-10*float64(n) {
			t.Errorf("n=%d: round trip error %g", n, d)
		}
	}
}

func TestInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{8, 12, 97, 1440} {
		src := randSlice(rng, n)
		want := make([]complex128, n)
		p := NewPlan(n)
		p.Forward(want, src)
		inplace := append([]complex128(nil), src...)
		p.Forward(inplace, inplace)
		if d := maxAbsDiff(inplace, want); d > 1e-12*float64(n) {
			t.Errorf("n=%d: in-place forward differs from out-of-place by %g", n, d)
		}
	}
}

func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{16, 45, 97, 720} {
		src := randSlice(rng, n)
		dst := make([]complex128, n)
		NewPlan(n).Forward(dst, src)
		var et, ef float64
		for i := 0; i < n; i++ {
			et += real(src[i])*real(src[i]) + imag(src[i])*imag(src[i])
			ef += real(dst[i])*real(dst[i]) + imag(dst[i])*imag(dst[i])
		}
		ef /= float64(n)
		if math.Abs(et-ef) > 1e-8*et {
			t.Errorf("n=%d: Parseval violated: time %g vs freq %g", n, et, ef)
		}
	}
}

func TestLinearityProperty(t *testing.T) {
	p := NewPlan(45)
	f := func(ar, ai, br, bi float64) bool {
		rng := rand.New(rand.NewSource(42))
		x := randSlice(rng, 45)
		y := randSlice(rng, 45)
		a := complex(math.Mod(ar, 10), math.Mod(ai, 10))
		b := complex(math.Mod(br, 10), math.Mod(bi, 10))
		comb := make([]complex128, 45)
		for i := range comb {
			comb[i] = a*x[i] + b*y[i]
		}
		fx := make([]complex128, 45)
		fy := make([]complex128, 45)
		fc := make([]complex128, 45)
		p.Forward(fx, x)
		p.Forward(fy, y)
		p.Forward(fc, comb)
		for i := range fc {
			if cmplx.Abs(fc[i]-(a*fx[i]+b*fy[i])) > 1e-8*(1+cmplx.Abs(a)+cmplx.Abs(b)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestImpulseAndConstant(t *testing.T) {
	for _, n := range []int{8, 13, 100} {
		p := NewPlan(n)
		// Transform of a unit impulse is all ones.
		src := make([]complex128, n)
		src[0] = 1
		dst := make([]complex128, n)
		p.Forward(dst, src)
		for k := range dst {
			if cmplx.Abs(dst[k]-1) > 1e-10 {
				t.Fatalf("n=%d: impulse transform at %d = %v, want 1", n, k, dst[k])
			}
		}
		// Transform of a constant is an impulse of height n at bin 0.
		for i := range src {
			src[i] = 2.5
		}
		p.Forward(dst, src)
		if cmplx.Abs(dst[0]-complex(2.5*float64(n), 0)) > 1e-9*float64(n) {
			t.Fatalf("n=%d: DC bin %v, want %v", n, dst[0], 2.5*float64(n))
		}
		for k := 1; k < n; k++ {
			if cmplx.Abs(dst[k]) > 1e-9*float64(n) {
				t.Fatalf("n=%d: leakage at bin %d: %v", n, k, dst[k])
			}
		}
	}
}

func TestShiftTheoremProperty(t *testing.T) {
	n := 96
	p := NewPlan(n)
	rng := rand.New(rand.NewSource(7))
	x := randSlice(rng, n)
	fx := make([]complex128, n)
	p.Forward(fx, x)
	f := func(shiftRaw uint8) bool {
		s := int(shiftRaw) % n
		shifted := make([]complex128, n)
		for i := range shifted {
			shifted[i] = x[(i+s)%n]
		}
		fs := make([]complex128, n)
		p.Forward(fs, shifted)
		for k := 0; k < n; k++ {
			ang := 2 * math.Pi * float64(k*s%n) / float64(n)
			si, co := math.Sincos(ang)
			want := fx[k] * complex(co, si)
			if cmplx.Abs(fs[k]-want) > 1e-8*(1+cmplx.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestRealInputHermitianSymmetry(t *testing.T) {
	n := 180
	p := NewPlan(n)
	rng := rand.New(rand.NewSource(8))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	fx := make([]complex128, n)
	p.Forward(fx, x)
	for k := 1; k < n; k++ {
		if cmplx.Abs(fx[k]-cmplx.Conj(fx[n-k])) > 1e-9 {
			t.Fatalf("Hermitian symmetry violated at k=%d", k)
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	p := NewPlan(45)
	q := p.Clone()
	rng := rand.New(rand.NewSource(9))
	x := randSlice(rng, 45)
	y := randSlice(rng, 45)
	outP := make([]complex128, 45)
	outQ := make([]complex128, 45)
	done := make(chan struct{})
	go func() {
		for i := 0; i < 50; i++ {
			p.Forward(outP, x)
		}
		close(done)
	}()
	for i := 0; i < 50; i++ {
		q.Forward(outQ, y)
	}
	<-done
	wantP := Naive(x, false)
	wantQ := Naive(y, false)
	if d := maxAbsDiff(outP, wantP); d > 1e-9 {
		t.Errorf("concurrent clone corrupted original plan output: %g", d)
	}
	if d := maxAbsDiff(outQ, wantQ); d > 1e-9 {
		t.Errorf("concurrent clone output wrong: %g", d)
	}
}

func TestNewPlanPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPlan(0) did not panic")
		}
	}()
	NewPlan(0)
}

func BenchmarkForwardPow2_1024(b *testing.B)      { benchForward(b, 1024) }
func BenchmarkForwardBluestein_720(b *testing.B)  { benchForward(b, 720) }
func BenchmarkForwardBluestein_1440(b *testing.B) { benchForward(b, 1440) }

func benchForward(b *testing.B, n int) {
	p := NewPlan(n)
	rng := rand.New(rand.NewSource(1))
	x := randSlice(rng, n)
	dst := make([]complex128, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(dst, x)
	}
}
